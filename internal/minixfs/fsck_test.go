package minixfs

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"aru/internal/core"
)

// TestFsckDetectsPlantedCorruption verifies Fsck is not vacuous: each
// planted inconsistency must be reported.
func TestFsckDetectsPlantedCorruption(t *testing.T) {
	t.Run("dangling dirent", func(t *testing.T) {
		fs, _ := newTestFS(t, core.VariantNew, DeleteBlocksFirst)
		f, err := fs.Create("/victim")
		if err != nil {
			t.Fatal(err)
		}
		// Clear the inode's bitmap bit behind the file system's back.
		if err := fs.setBitmap(0, f.Ino(), false); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Fsck(); err == nil {
			t.Fatal("fsck missed a dirent pointing at an unallocated inode")
		}
	})
	t.Run("orphaned inode", func(t *testing.T) {
		fs, _ := newTestFS(t, core.VariantNew, DeleteBlocksFirst)
		f, err := fs.Create("/victim")
		if err != nil {
			t.Fatal(err)
		}
		// Remove the dirent without freeing the inode.
		_, pIn, err := fs.resolve("/")
		if err != nil {
			t.Fatal(err)
		}
		_, blk, slot, ok, err := fs.dirLookup(0, pIn, "victim")
		if err != nil || !ok {
			t.Fatalf("lookup: %v %v", ok, err)
		}
		if err := fs.dirRemoveEntry(0, RootIno, pIn, blk, slot); err != nil {
			t.Fatal(err)
		}
		_ = f
		if _, err := fs.Fsck(); err == nil {
			t.Fatal("fsck missed an allocated inode with no references")
		}
	})
	t.Run("size beyond data", func(t *testing.T) {
		fs, _ := newTestFS(t, core.VariantNew, DeleteBlocksFirst)
		f, err := fs.Create("/victim")
		if err != nil {
			t.Fatal(err)
		}
		in, err := fs.readInode(0, f.Ino())
		if err != nil {
			t.Fatal(err)
		}
		in.Size = 1 << 20 // no data blocks behind it
		if err := fs.writeInode(0, f.Ino(), in); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Fsck(); err == nil {
			t.Fatal("fsck missed a size larger than the data list")
		}
	})
}

// TestDeletePoliciesEquivalent: both deletion policies must leave the
// identical logical state behind — they differ only in cost.
func TestDeletePoliciesEquivalent(t *testing.T) {
	type state struct {
		files map[string]string
		used  int
	}
	capture := func(fs *FS) state {
		rpt, err := fs.Fsck()
		if err != nil {
			t.Fatal(err)
		}
		out := state{files: make(map[string]string), used: rpt.InodesUsed}
		var walk func(dir string)
		walk = func(dir string) {
			ents, err := fs.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range ents {
				p := dir + "/" + e.Name
				if dir == "/" {
					p = "/" + e.Name
				}
				if e.Mode == ModeDir {
					walk(p)
					continue
				}
				f, err := fs.Open(p)
				if err != nil {
					t.Fatal(err)
				}
				body, err := f.ReadAll()
				if err != nil {
					t.Fatal(err)
				}
				out.files[p] = string(body)
			}
		}
		walk("/")
		return out
	}

	var states []state
	for _, pol := range []DeletePolicy{DeleteBlocksFirst, DeleteListFirst} {
		fs, _ := newTestFS(t, core.VariantNew, pol)
		for i := 0; i < 30; i++ {
			f, err := fs.Create(fmt.Sprintf("/f%02d", i))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteAt(bytes.Repeat([]byte{byte(i)}, 400*(i%7+1)), 0); err != nil {
				t.Fatal(err)
			}
			if i%3 == 2 {
				if err := fs.Remove(fmt.Sprintf("/f%02d", i-1)); err != nil {
					t.Fatal(err)
				}
			}
		}
		states = append(states, capture(fs))
	}
	if !reflect.DeepEqual(states[0], states[1]) {
		t.Fatalf("deletion policies diverged:\nblocks-first: %d files\nlist-first: %d files",
			len(states[0].files), len(states[1].files))
	}
}

// TestInodeExhaustion: running out of inodes fails cleanly and leaves
// the file system consistent (the failed create aborts its ARU).
func TestInodeExhaustion(t *testing.T) {
	fs, _ := newTestFS(t, core.VariantNew, DeleteBlocksFirst)
	var err error
	created := 0
	for i := 0; ; i++ {
		_, err = fs.Create(fmt.Sprintf("/f%04d", i))
		if err != nil {
			break
		}
		created++
	}
	if !errors.Is(err, ErrNoInodes) {
		t.Fatalf("exhaustion error: %v", err)
	}
	if created == 0 {
		t.Fatal("created nothing")
	}
	if _, err := fs.Fsck(); err != nil {
		t.Fatalf("fsck after exhaustion: %v", err)
	}
	// Deleting frees inodes for reuse.
	if err := fs.Remove("/f0000"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("/again"); err != nil {
		t.Fatalf("create after free: %v", err)
	}
	// The aborted creates leaked committed-state allocations (lists);
	// the LD-level invariants must still hold.
	if err := fs.Disk().VerifyInternal(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentFSClients exercises the file system lock with parallel
// creators/deleters in separate directories.
func TestConcurrentFSClients(t *testing.T) {
	fs, _ := newTestFS(t, core.VariantNew, DeleteListFirst)
	const workers = 6
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dir := fmt.Sprintf("/w%d", w)
			if err := fs.Mkdir(dir); err != nil {
				errCh <- err
				return
			}
			for i := 0; i < 20; i++ {
				name := fmt.Sprintf("%s/f%02d", dir, i)
				f, err := fs.Create(name)
				if err != nil {
					errCh <- err
					return
				}
				if _, err := f.WriteAt([]byte(strings.Repeat("x", 100+i)), 0); err != nil {
					errCh <- err
					return
				}
				if i%2 == 1 {
					if err := fs.Remove(fmt.Sprintf("%s/f%02d", dir, i-1)); err != nil {
						errCh <- err
						return
					}
				}
			}
			errCh <- nil
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
	rpt, err := fs.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if rpt.FilesFound != workers*10 {
		t.Fatalf("found %d files, want %d", rpt.FilesFound, workers*10)
	}
	if err := fs.Disk().VerifyInternal(); err != nil {
		t.Fatal(err)
	}
}

// TestPathEdgeCases covers name validation and path handling.
func TestPathEdgeCases(t *testing.T) {
	fs, _ := newTestFS(t, core.VariantNew, DeleteBlocksFirst)
	if _, err := fs.Create("/"); !errors.Is(err, ErrBadName) {
		t.Errorf("create root: %v", err)
	}
	if _, err := fs.Create("/" + strings.Repeat("n", MaxNameLen+1)); !errors.Is(err, ErrBadName) {
		t.Errorf("oversized name: %v", err)
	}
	if _, err := fs.Create("/ok/" + "x"); !errors.Is(err, ErrNotExist) {
		t.Errorf("missing parent: %v", err)
	}
	if _, err := fs.Create("//double//slash"); !errors.Is(err, ErrNotExist) {
		t.Errorf("etc: %v", err)
	}
	if err := fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("/d"); !errors.Is(err, ErrExist) {
		t.Errorf("create over dir: %v", err)
	}
	if _, err := fs.Open("/d"); !errors.Is(err, ErrIsDir) {
		t.Errorf("open dir as file: %v", err)
	}
	if err := fs.Rmdir("/"); !errors.Is(err, ErrBadName) {
		t.Errorf("rmdir root: %v", err)
	}
	if _, err := fs.Create("/d/deep"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/d/deep"); err != nil {
		t.Fatal(err)
	}
	// A file used as a directory component.
	if _, err := fs.Create("/d/deep/x"); !errors.Is(err, ErrNotDir) {
		t.Errorf("file as dir: %v", err)
	}
}

// TestDirectoryGrowth fills a directory past one block and verifies
// lookup, enumeration and slot reuse.
func TestDirectoryGrowth(t *testing.T) {
	fs, _ := newTestFS(t, core.VariantNew, DeleteListFirst)
	perBlock := fs.bsize / direntSize
	n := perBlock*2 + 5 // three directory blocks
	for i := 0; i < n; i++ {
		if _, err := fs.Create(fmt.Sprintf("/f%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := fs.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != n {
		t.Fatalf("ReadDir found %d, want %d", len(ents), n)
	}
	// Deleting and recreating reuses freed slots without another grow.
	before, _ := fs.Stat("/")
	for i := 0; i < 10; i++ {
		if err := fs.Remove(fmt.Sprintf("/f%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if _, err := fs.Create(fmt.Sprintf("/g%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	after, _ := fs.Stat("/")
	if after.Size != before.Size {
		t.Fatalf("directory grew from %d to %d despite free slots", before.Size, after.Size)
	}
	if _, err := fs.Fsck(); err != nil {
		t.Fatal(err)
	}
}

// TestMTimeAdvances verifies the directory inode is touched by creates
// and removes (the Minix behaviour the cost model depends on).
func TestMTimeAdvances(t *testing.T) {
	fs, _ := newTestFS(t, core.VariantNew, DeleteBlocksFirst)
	read := func() uint64 {
		in, err := fs.readInode(0, RootIno)
		if err != nil {
			t.Fatal(err)
		}
		return in.MTime
	}
	m0 := read()
	if _, err := fs.Create("/a"); err != nil {
		t.Fatal(err)
	}
	m1 := read()
	if m1 <= m0 {
		t.Fatalf("create did not advance mtime: %d -> %d", m0, m1)
	}
	if err := fs.Remove("/a"); err != nil {
		t.Fatal(err)
	}
	if m2 := read(); m2 <= m1 {
		t.Fatalf("remove did not advance mtime: %d -> %d", m1, m2)
	}
}

// sortedNames is a helper used by equivalence checks.
func sortedNames(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
