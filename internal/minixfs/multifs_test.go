package minixfs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"aru/internal/core"
	"aru/internal/disk"
	"aru/internal/seg"
)

// TestTwoFileSystemsShareOneDisk exercises the Logical Disk's
// multi-client design (paper §2: "several different file systems can
// share a particular LD implementation"): two independent Minix file
// systems live on one logical disk, are driven concurrently, and are
// re-mounted by their meta lists after a clean reopen.
func TestTwoFileSystemsShareOneDisk(t *testing.T) {
	layout := seg.Layout{
		BlockSize: 1024, SegBytes: 16384, NumSegs: 256,
		MaxBlocks: 16384, MaxLists: 8192,
	}
	dev := disk.NewMem(layout.DiskBytes())
	ld, err := core.Format(dev, core.Params{Layout: layout})
	if err != nil {
		t.Fatal(err)
	}
	fsA, err := Mkfs(ld, Config{NumInodes: 256, Policy: DeleteBlocksFirst})
	if err != nil {
		t.Fatal(err)
	}
	fsB, err := Mkfs(ld, Config{NumInodes: 256, Policy: DeleteListFirst})
	if err != nil {
		t.Fatal(err)
	}
	if fsA.MetaList() == fsB.MetaList() {
		t.Fatal("the two file systems share a meta list")
	}

	// Drive both concurrently.
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	drive := func(fs *FS, tag byte) {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			f, err := fs.Create(fmt.Sprintf("/n%02d", i))
			if err != nil {
				errs <- err
				return
			}
			if _, err := f.WriteAt(bytes.Repeat([]byte{tag}, 300+i*40), 0); err != nil {
				errs <- err
				return
			}
			if i%4 == 3 {
				if err := fs.Remove(fmt.Sprintf("/n%02d", i-1)); err != nil {
					errs <- err
					return
				}
			}
		}
		errs <- nil
	}
	wg.Add(2)
	go drive(fsA, 0xAA)
	go drive(fsB, 0xBB)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, fs := range []*FS{fsA, fsB} {
		if _, err := fs.Fsck(); err != nil {
			t.Fatal(err)
		}
	}
	metaA, metaB := fsA.MetaList(), fsB.MetaList()
	if err := ld.Close(); err != nil {
		t.Fatal(err)
	}

	// Remount both by meta list after recovery.
	ld2, err := core.Open(dev, core.Params{})
	if err != nil {
		t.Fatal(err)
	}
	fsA2, err := MountAt(ld2, DeleteBlocksFirst, metaA)
	if err != nil {
		t.Fatalf("remount A: %v", err)
	}
	fsB2, err := MountAt(ld2, DeleteListFirst, metaB)
	if err != nil {
		t.Fatalf("remount B: %v", err)
	}
	check := func(fs *FS, tag byte) {
		t.Helper()
		rpt, err := fs.Fsck()
		if err != nil {
			t.Fatal(err)
		}
		// 25 created, 6 removed.
		if rpt.FilesFound != 19 {
			t.Fatalf("tag %#x: %d files, want 19", tag, rpt.FilesFound)
		}
		f, err := fs.Open("/n00")
		if err != nil {
			t.Fatal(err)
		}
		body, err := f.ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range body {
			if x != tag {
				t.Fatalf("cross-contamination: found %#x in fs %#x", x, tag)
			}
		}
	}
	check(fsA2, 0xAA)
	check(fsB2, 0xBB)

	// Default Mount finds the first file system.
	fsFirst, err := Mount(ld2, DeleteBlocksFirst)
	if err != nil {
		t.Fatal(err)
	}
	if fsFirst.MetaList() != metaA {
		t.Fatalf("Mount found meta list %d, want the first (%d)", fsFirst.MetaList(), metaA)
	}
}
