package minixfs

import (
	"encoding/binary"
	"fmt"
	"strings"

	"aru/internal/core"
)

// DirEntry is one directory entry as returned by ReadDir.
type DirEntry struct {
	Name string
	Ino  Ino
	Mode Mode
}

// decodeDirent decodes slot p (direntSize bytes); a zero inode means a
// free slot.
func decodeDirent(p []byte) (Ino, string) {
	ino := Ino(binary.LittleEndian.Uint64(p[0:]))
	if ino == 0 {
		return 0, ""
	}
	n := int(p[8])
	if n > MaxNameLen {
		n = MaxNameLen
	}
	return ino, string(p[9 : 9+n])
}

// encodeDirent writes (ino, name) into slot p.
func encodeDirent(p []byte, ino Ino, name string) {
	for i := range p {
		p[i] = 0
	}
	binary.LittleEndian.PutUint64(p[0:], uint64(ino))
	p[8] = byte(len(name))
	copy(p[9:], name)
}

// validName rejects empty, oversized, and separator-containing names.
func validName(name string) error {
	if name == "" || len(name) > MaxNameLen ||
		strings.ContainsRune(name, '/') || name == "." || name == ".." {
		return fmt.Errorf("%w: %q", ErrBadName, name)
	}
	return nil
}

// dirBlocks returns the data blocks of directory inode in, viewed
// through aru.
func (fs *FS) dirBlocks(aru core.ARUID, in inode) ([]core.BlockID, error) {
	return fs.ld.ListBlocks(aru, in.List)
}

// dirLookup scans directory din for name, returning the entry's inode
// and its location (block, slot). ok is false if absent.
func (fs *FS) dirLookup(aru core.ARUID, din inode, name string) (ino Ino, blk core.BlockID, slot int, ok bool, err error) {
	blocks, err := fs.dirBlocks(aru, din)
	if err != nil {
		return 0, 0, 0, false, err
	}
	buf := make([]byte, fs.bsize)
	for _, b := range blocks {
		if err := fs.ld.Read(aru, b, buf); err != nil {
			return 0, 0, 0, false, err
		}
		for s := 0; s < fs.perDir; s++ {
			eIno, eName := decodeDirent(buf[s*direntSize:])
			if eIno != 0 && eName == name {
				return eIno, b, s, true, nil
			}
		}
	}
	return 0, 0, 0, false, nil
}

// dirAddEntry inserts (name → ino) into directory dIno (inode din),
// within aru: it reuses a free slot or appends a fresh directory block.
// The directory inode is rewritten with a fresh modification time (and
// new size if the directory grew), as Minix does on every create.
func (fs *FS) dirAddEntry(aru core.ARUID, dIno Ino, din inode, name string, ino Ino) error {
	blocks, err := fs.dirBlocks(aru, din)
	if err != nil {
		return err
	}
	buf := make([]byte, fs.bsize)
	wrote := false
	for _, b := range blocks {
		if err := fs.ld.Read(aru, b, buf); err != nil {
			return err
		}
		for s := 0; s < fs.perDir; s++ {
			if eIno, _ := decodeDirent(buf[s*direntSize:]); eIno == 0 {
				encodeDirent(buf[s*direntSize:(s+1)*direntSize], ino, name)
				if err := fs.ld.Write(aru, b, buf); err != nil {
					return err
				}
				wrote = true
				break
			}
		}
		if wrote {
			break
		}
	}
	if !wrote {
		// All slots full: grow the directory by one block.
		pred := core.NilBlock
		if len(blocks) > 0 {
			pred = blocks[len(blocks)-1]
		}
		nb, err := fs.ld.NewBlock(aru, din.List, pred)
		if err != nil {
			return err
		}
		for i := range buf {
			buf[i] = 0
		}
		encodeDirent(buf[0:direntSize], ino, name)
		if err := fs.ld.Write(aru, nb, buf); err != nil {
			return err
		}
		din.Size += uint64(fs.bsize)
	}
	din.MTime = fs.tickClock()
	return fs.writeInode(aru, dIno, din)
}

// dirRemoveEntry clears the dirent at (blk, slot) of directory dIno and
// rewrites the directory inode with a fresh modification time, as Minix
// does on every unlink.
func (fs *FS) dirRemoveEntry(aru core.ARUID, dIno Ino, din inode, blk core.BlockID, slot int) error {
	buf := make([]byte, fs.bsize)
	if err := fs.ld.Read(aru, blk, buf); err != nil {
		return err
	}
	p := buf[slot*direntSize : (slot+1)*direntSize]
	for i := range p {
		p[i] = 0
	}
	if err := fs.ld.Write(aru, blk, buf); err != nil {
		return err
	}
	din.MTime = fs.tickClock()
	return fs.writeInode(aru, dIno, din)
}

// tickClock returns a fresh logical modification time. The caller holds
// fs.mu.
func (fs *FS) tickClock() uint64 {
	fs.clock++
	return fs.clock
}

// dirEmpty reports whether directory din holds no entries.
func (fs *FS) dirEmpty(aru core.ARUID, din inode) (bool, error) {
	blocks, err := fs.dirBlocks(aru, din)
	if err != nil {
		return false, err
	}
	buf := make([]byte, fs.bsize)
	for _, b := range blocks {
		if err := fs.ld.Read(aru, b, buf); err != nil {
			return false, err
		}
		for s := 0; s < fs.perDir; s++ {
			if ino, _ := decodeDirent(buf[s*direntSize:]); ino != 0 {
				return false, nil
			}
		}
	}
	return true, nil
}

// ReadDir lists the entries of the directory at path, in storage order.
func (fs *FS) ReadDir(path string) ([]DirEntry, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, in, err := fs.resolve(path)
	if err != nil {
		return nil, err
	}
	if in.Mode != ModeDir {
		return nil, fmt.Errorf("%w: %s", ErrNotDir, path)
	}
	blocks, err := fs.dirBlocks(0, in)
	if err != nil {
		return nil, err
	}
	var out []DirEntry
	buf := make([]byte, fs.bsize)
	for _, b := range blocks {
		if err := fs.ld.Read(0, b, buf); err != nil {
			return nil, err
		}
		for s := 0; s < fs.perDir; s++ {
			ino, name := decodeDirent(buf[s*direntSize:])
			if ino == 0 {
				continue
			}
			ein, err := fs.readInode(0, ino)
			if err != nil {
				return nil, err
			}
			out = append(out, DirEntry{Name: name, Ino: ino, Mode: ein.Mode})
		}
	}
	return out, nil
}
