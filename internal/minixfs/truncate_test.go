package minixfs

import (
	"bytes"
	"testing"

	"aru/internal/core"
)

// TestTruncateRMWRegression pins the end-to-end scenario that exposed
// the shadow-copy bug (see core's shadowcopy_test.go): overlapping
// writes, then a truncate whose tail read-modify-write runs inside the
// deletion ARU.
func TestTruncateRMWRegression(t *testing.T) {
	fs, _ := newTestFS(t, core.VariantNew, DeleteBlocksFirst)
	f, err := fs.Create("/a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(bytes.Repeat([]byte{0xAA}, 3252), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(bytes.Repeat([]byte{0x5b}, 1796), 847); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(1981); err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range got {
		want := byte(0xAA)
		if i >= 847 {
			want = 0x5b
		}
		if x != want {
			t.Fatalf("byte %d = %#x, want %#x", i, x, want)
		}
	}
}
