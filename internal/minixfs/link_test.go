package minixfs

import (
	"bytes"
	"errors"
	"testing"

	"aru/internal/core"
	"aru/internal/disk"
)

func TestHardLinks(t *testing.T) {
	fs, _ := newTestFS(t, core.VariantNew, DeleteBlocksFirst)
	f, err := fs.Create("/orig")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("shared"), 300)
	if _, err := f.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Link("/orig", "/d/alias"); err != nil {
		t.Fatalf("Link: %v", err)
	}

	// Both names see the same inode and contents.
	fi1, _ := fs.Stat("/orig")
	fi2, _ := fs.Stat("/d/alias")
	if fi1.Ino != fi2.Ino {
		t.Fatalf("link has different inode: %d vs %d", fi1.Ino, fi2.Ino)
	}
	if fi1.Nlink != 2 {
		t.Fatalf("nlink = %d, want 2", fi1.Nlink)
	}
	g, err := fs.Open("/d/alias")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := g.ReadAll()
	if !bytes.Equal(got, payload) {
		t.Fatal("alias contents differ")
	}
	// Writes through one name are visible through the other.
	if _, err := g.WriteAt([]byte("UPDATED"), 0); err != nil {
		t.Fatal(err)
	}
	h, _ := fs.Open("/orig")
	got, _ = h.ReadAll()
	if !bytes.HasPrefix(got, []byte("UPDATED")) {
		t.Fatal("write not visible through the other name")
	}
	if _, err := fs.Fsck(); err != nil {
		t.Fatalf("fsck with links: %v", err)
	}

	// Removing one name keeps the file; removing the last frees it.
	if err := fs.Remove("/orig"); err != nil {
		t.Fatal(err)
	}
	if fi, err := fs.Stat("/d/alias"); err != nil || fi.Nlink != 1 {
		t.Fatalf("after first remove: %+v %v", fi, err)
	}
	if _, err := fs.Fsck(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/d/alias"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/d/alias"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("last remove: %v", err)
	}
	rpt, err := fs.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if rpt.FilesFound != 0 {
		t.Fatalf("files remain after final remove: %d", rpt.FilesFound)
	}
	if err := fs.Disk().VerifyInternal(); err != nil {
		t.Fatal(err)
	}
}

func TestLinkErrors(t *testing.T) {
	fs, _ := newTestFS(t, core.VariantNew, DeleteBlocksFirst)
	if err := fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Link("/d", "/d2"); !errors.Is(err, ErrIsDir) {
		t.Errorf("linking a directory: %v", err)
	}
	if err := fs.Link("/missing", "/x"); !errors.Is(err, ErrNotExist) {
		t.Errorf("linking a missing file: %v", err)
	}
	if err := fs.Link("/f", "/f"); !errors.Is(err, ErrExist) {
		t.Errorf("linking over an existing name: %v", err)
	}
}

// TestCrashSweepLink: the link-count bump and the new dirent are
// atomic at every crash point — Fsck's nlink-vs-references cross-check
// is the oracle.
func TestCrashSweepLink(t *testing.T) {
	payload := bytes.Repeat([]byte{0x7C}, 2200)
	workload := func(fs *FS) error {
		f, err := fs.Create("/file")
		if err != nil {
			return err
		}
		if _, err := f.WriteAt(payload, 0); err != nil {
			return err
		}
		if err := fs.Sync(); err != nil {
			return err
		}
		if err := fs.Link("/file", "/alias1"); err != nil {
			return err
		}
		if err := fs.Sync(); err != nil {
			return err
		}
		if err := fs.Link("/file", "/alias2"); err != nil {
			return err
		}
		if err := fs.Remove("/file"); err != nil {
			return err
		}
		return fs.Sync()
	}
	sweep(t, DeleteBlocksFirst, workload, func(t *testing.T, crash int64, fs *FS) {
		// Fsck (run by sweep) already cross-checked nlink == dirent
		// references. Contents must be intact through any live name.
		for _, name := range []string{"/file", "/alias1", "/alias2"} {
			f, err := fs.Open(name)
			if errors.Is(err, ErrNotExist) {
				continue
			}
			if err != nil {
				t.Fatalf("crash %d: %s: %v", crash, name, err)
			}
			got, err := f.ReadAll()
			if err != nil {
				t.Fatalf("crash %d: read %s: %v", crash, name, err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("crash %d: %s torn", crash, name)
			}
		}
	})
}

var _ = disk.SectorSize
