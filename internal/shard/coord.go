package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"aru/internal/disk"
)

// The coordinator log is the commit point of every cross-shard ARU: a
// tiny dedicated device holding one commit record per coordinator
// transaction. The two-phase protocol makes a unit's outcome turn on
// exactly one atomic event — the sync of its coordinator record.
// Recovery resolves each shard's in-doubt prepares by presence: record
// present → redo the unit on that shard; absent → presumed abort,
// erased tracelessly (paper §3.3 extended across engines).
//
// Format: sector 0 is a header naming the format and the shard count
// the log coordinates (validated at open — routing is pure id
// arithmetic over the device count, so a mismatched mount would
// silently misroute every id); each following sector holds at most one
// record, magic | txn | crc32, written and synced before EndARU
// acknowledges. A record never spans sectors, so the device's
// per-sector atomicity makes each commit decision atomic on its own;
// the CRC additionally rejects any torn or stale bytes. The scan stops
// at the first invalid sector — valid, because records are strictly
// appended, each is synced before the next is written, and format
// zeroes the whole device, so no valid record can ever sit beyond the
// append point.

const (
	coordHdrMagic = "ARU2PCL\x02"
	coordRecMagic = "ARUCMT\x00\x01"
	coordRecSize  = disk.SectorSize
)

// ErrCoordFull reports a coordinator log with no free record slots;
// Checkpoint reclaims it (checkpoint every shard, then reset).
var ErrCoordFull = errors.New("shard: coordinator log is full")

// CoordBytes returns the device size of a coordinator log holding
// records commit records.
func CoordBytes(records int) int64 {
	return int64(records+1) * coordRecSize
}

// CoordSummary describes a coordinator-log image, for inspection
// tooling.
type CoordSummary struct {
	Shards  int      // shard count the log was formatted for
	Slots   int64    // record capacity
	Records []uint64 // committed transaction ids, in log order
}

// InspectCoordImage decodes a raw coordinator-log image without
// mounting it: the header is validated and the records scanned exactly
// as openCoord would.
func InspectCoordImage(img []byte) (CoordSummary, error) {
	slots := int64(len(img))/coordRecSize - 1
	if slots < 1 {
		return CoordSummary{}, fmt.Errorf("shard: coordinator image too small (%d bytes)", len(img))
	}
	shards, err := parseCoordHeader(img[:coordRecSize])
	if err != nil {
		return CoordSummary{}, err
	}
	s := CoordSummary{Shards: shards, Slots: slots}
	for i := int64(0); i < slots; i++ {
		txn, ok := parseCoordRecord(img[(i+1)*coordRecSize : (i+2)*coordRecSize])
		if !ok {
			break
		}
		s.Records = append(s.Records, txn)
	}
	return s, nil
}

type coordLog struct {
	dev disk.Disk

	mu        sync.Mutex
	committed map[uint64]bool
	next      int64 // next free record slot (0-based; sector next+1)
	slots     int64
}

func coordRecord(txn uint64) []byte {
	p := make([]byte, coordRecSize)
	copy(p, coordRecMagic)
	binary.LittleEndian.PutUint64(p[8:], txn)
	binary.LittleEndian.PutUint32(p[16:], crc32.ChecksumIEEE(p[:16]))
	return p
}

func parseCoordRecord(p []byte) (uint64, bool) {
	if string(p[:8]) != coordRecMagic {
		return 0, false
	}
	if crc32.ChecksumIEEE(p[:16]) != binary.LittleEndian.Uint32(p[16:]) {
		return 0, false
	}
	return binary.LittleEndian.Uint64(p[8:]), true
}

func coordHeader(shards int) []byte {
	p := make([]byte, coordRecSize)
	copy(p, coordHdrMagic)
	binary.LittleEndian.PutUint32(p[8:], uint32(shards))
	binary.LittleEndian.PutUint32(p[12:], crc32.ChecksumIEEE(p[:12]))
	return p
}

func parseCoordHeader(p []byte) (int, error) {
	if string(p[:8]) != coordHdrMagic {
		return 0, fmt.Errorf("shard: device is not a coordinator log (bad header)")
	}
	if crc32.ChecksumIEEE(p[:12]) != binary.LittleEndian.Uint32(p[12:]) {
		return 0, fmt.Errorf("shard: coordinator header checksum mismatch")
	}
	return int(binary.LittleEndian.Uint32(p[8:])), nil
}

// formatCoord initializes dev as an empty coordinator log for a set of
// shards shards.
func formatCoord(dev disk.Disk, shards int) (*coordLog, error) {
	slots := dev.Size()/coordRecSize - 1
	if slots < 1 {
		return nil, fmt.Errorf("shard: coordinator device too small (%d bytes)", dev.Size())
	}
	// Every record slot must read invalid on a device with stale
	// contents (a re-format over an older coordinator log): the
	// open-time scan stops at the first invalid sector, so a CRC-valid
	// leftover anywhere past the append point would be scanned as
	// committed once the new log grows up to it — and could wrongly
	// resolve an in-doubt prepare whose txn id collides with it. Zero
	// the whole device, not just the first slot.
	img := make([]byte, (slots+1)*coordRecSize)
	copy(img, coordHeader(shards))
	if err := dev.WriteAt(img, 0); err != nil {
		return nil, fmt.Errorf("shard: formatting coordinator log: %w", err)
	}
	if err := dev.Sync(); err != nil {
		return nil, err
	}
	return &coordLog{dev: dev, committed: make(map[uint64]bool), slots: slots}, nil
}

// openCoord mounts an existing coordinator log, validating the shard
// count it was formatted for and rebuilding the committed-transaction
// set from the records on it.
func openCoord(dev disk.Disk, shards int) (*coordLog, error) {
	slots := dev.Size()/coordRecSize - 1
	if slots < 1 {
		return nil, fmt.Errorf("shard: coordinator device too small (%d bytes)", dev.Size())
	}
	hdr := make([]byte, coordRecSize)
	if err := dev.ReadAt(hdr, 0); err != nil {
		return nil, fmt.Errorf("shard: reading coordinator header: %w", err)
	}
	n, err := parseCoordHeader(hdr)
	if err != nil {
		return nil, err
	}
	if n != shards {
		return nil, fmt.Errorf("%w: coordinator log formatted for %d shards, mounted with %d", ErrShardMismatch, n, shards)
	}
	c := &coordLog{dev: dev, committed: make(map[uint64]bool), slots: slots}
	buf := make([]byte, coordRecSize)
	for i := int64(0); i < slots; i++ {
		if err := dev.ReadAt(buf, (i+1)*coordRecSize); err != nil {
			return nil, err
		}
		txn, ok := parseCoordRecord(buf)
		if !ok {
			break
		}
		c.committed[txn] = true
		c.next = i + 1
	}
	return c, nil
}

// commit makes txn's commit record durable — the 2PC commit point.
// When it returns, every future recovery resolves txn as committed.
func (c *coordLog) commit(txn uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.next >= c.slots {
		return ErrCoordFull
	}
	if err := c.dev.WriteAt(coordRecord(txn), (c.next+1)*coordRecSize); err != nil {
		return err
	}
	if err := c.dev.Sync(); err != nil {
		return err
	}
	c.next++
	c.committed[txn] = true
	return nil
}

// has reports whether txn has a durable commit record — the resolver
// recovery consults for each in-doubt prepare.
func (c *coordLog) has(txn uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.committed[txn]
}

// maxTxn returns the largest committed transaction id (0 if none),
// one input to the next-transaction floor at open.
func (c *coordLog) maxTxn() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var m uint64
	for t := range c.committed {
		if t > m {
			m = t
		}
	}
	return m
}

// used returns how many record slots are occupied.
func (c *coordLog) used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.next
}

// reset erases every record, reclaiming the log. Only safe once no
// shard can hold an in-doubt prepare referencing a logged transaction —
// i.e. after every shard checkpointed with commits barred for the whole
// sequence (Disk.Checkpoint holds the commit gate exclusively, so no
// 2PC commit can land between one shard's checkpoint and this reset).
func (c *coordLog) reset() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.next == 0 {
		return nil
	}
	// Zero every slot written since the last reset. Format zeroed the
	// whole device and appends are dense from slot 0, so zeroing the
	// written prefix restores the invariant that every slot at or past
	// the append point reads invalid.
	if err := c.dev.WriteAt(make([]byte, c.next*coordRecSize), coordRecSize); err != nil {
		return err
	}
	if err := c.dev.Sync(); err != nil {
		return err
	}
	c.next = 0
	c.committed = make(map[uint64]bool)
	return nil
}
