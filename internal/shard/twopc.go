package shard

import (
	"fmt"
	"time"

	"aru/internal/core"
	"aru/internal/obs"
)

// The cross-shard commit protocol. An external unit that touched one
// shard (or none) commits on the fast path — the participant engine's
// own EndARU, indistinguishable from an unsharded disk. A unit with
// several participants commits in two phases:
//
//  1. Prepare: each participant engine makes the unit redoable in its
//     own log (core.PrepareARU) and seals it with a flush. After this
//     phase every participant can replay the unit from stable storage
//     alone — it just doesn't know whether it should.
//  2. Commit: the coordinator makes one commit record durable on the
//     coordinator log. That single sector sync is the commit point:
//     recovery on any shard resolves the unit's prepare by the
//     record's presence. Each participant then applies the decision
//     in memory (core.CommitPrepared); those commit records ride the
//     shards' logs lazily, like any single-engine commit.
//
// A crash anywhere in phase 1 aborts the unit on every shard (no
// coordinator record → presumed abort, traceless). A crash after the
// coordinator sync commits it everywhere — each shard redoes its part
// from the prepared log. There is no window in which some shards can
// keep the unit and others lose it, which is exactly what the
// multi-device crash enumerator checks.

// BeginARU opens a new external unit. Local ARUs are opened lazily on
// the first operation that touches each shard.
func (s *Disk) BeginARU() (ARUID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, core.ErrClosed
	}
	s.nextID++
	id := s.nextID
	s.units[id] = &unit{locals: make(map[int]ARUID)}
	return id, nil
}

// take removes and returns the unit of an external ARU.
func (s *Disk) take(aru ARUID) (*unit, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	u, ok := s.units[aru]
	if !ok {
		return nil, fmt.Errorf("%w: %d", core.ErrNoSuchARU, aru)
	}
	delete(s.units, aru)
	return u, nil
}

// EndARU commits the unit atomically across every shard it touched.
func (s *Disk) EndARU(aru ARUID) error {
	return s.EndARUTraced(aru, obs.SpanContext{})
}

// EndARUTraced is EndARU carrying trace context: the fast path
// delegates the context to the engine commit; the 2PC path runs under
// a twopc-commit span that parents every participant prepare, the
// coordinator commit and every participant apply.
func (s *Disk) EndARUTraced(aru ARUID, sc obs.SpanContext) error {
	u, err := s.take(aru)
	if err != nil {
		return err
	}
	switch len(u.order) {
	case 0:
		// The unit never touched a shard; nothing to commit.
		s.fastCommits.Add(1)
		return nil
	case 1:
		// Fast path: one participant commits exactly as an unsharded
		// engine would — no prepare, no coordinator record.
		s.fastCommits.Add(1)
		i := u.order[0]
		return s.shards[i].EndARUTraced(u.locals[i], sc)
	}
	return s.commitCrossShard(aru, u, sc)
}

// commitCrossShard runs the two-phase protocol over the unit's
// participants, in first-touch order.
func (s *Disk) commitCrossShard(aru ARUID, u *unit, sc obs.SpanContext) error {
	// Shared side of the checkpoint barrier: the whole 2PC commit —
	// prepare, coordinator record, apply — must not interleave with
	// Checkpoint's checkpoint-every-shard-then-reset sequence (see
	// Disk.Checkpoint). The fast path needs no gate: a single-shard
	// unit writes no prepare and no coordinator record, and its open
	// local ARU already makes a concurrent engine checkpoint refuse.
	// The gap between take and this acquire is likewise covered by the
	// participants' open locals.
	s.ckpt.RLock()
	defer s.ckpt.RUnlock()
	txn := s.nextTxn.Add(1) - 1
	var (
		t0     time.Duration
		spanID uint64
	)
	if s.tr.SpanEnabled() {
		t0 = s.tr.Now()
		spanID = s.tr.NextID()
		if sc.Trace == 0 {
			sc.Trace = s.tr.NextID()
		}
	} else {
		sc = obs.SpanContext{}
	}
	csc := obs.SpanContext{Trace: sc.Trace, Span: spanID}

	// Phase 1: prepare every participant, then seal the prepares with
	// flushes. A failure here aborts the unit everywhere — no
	// coordinator record exists yet, so the abort needs no durability
	// of its own (a crash now resolves the same way).
	prepare := func(i int) error {
		pt0 := s.tr.Now()
		if err := s.shards[i].PrepareARUTraced(u.locals[i], txn, csc); err != nil {
			return fmt.Errorf("shard %d: prepare: %w", i, err)
		}
		if s.opts.UnsafeCommitBeforePrepareSync {
			return nil // flushed (too late) below
		}
		if err := s.shards[i].FlushTraced(csc); err != nil {
			return fmt.Errorf("shard %d: prepare flush: %w", i, err)
		}
		s.tr.ObserveSince(obs.HistPrepare, pt0)
		return nil
	}
	if err := s.fanOut(u, prepare); err != nil {
		s.abortLocals(u)
		s.crossAborts.Add(1)
		return err
	}

	// Phase 2: one durable coordinator record decides the unit.
	ct0 := s.tr.Now()
	if err := s.coord.commit(txn); err != nil {
		// The record did not become durable: the unit resolves as
		// aborted after any crash, so abort it live too.
		s.abortLocals(u)
		s.crossAborts.Add(1)
		return fmt.Errorf("shard: coordinator commit of txn %d: %w", txn, err)
	}
	s.tr.ObserveSince(obs.HistCoordCommit, ct0)
	s.tr.Emit(obs.EvCoordCommit, uint64(aru), txn, uint64(len(u.order)))
	if spanID != 0 {
		s.tr.EmitSpan(obs.Span{
			Trace: sc.Trace, ID: s.tr.NextID(), Parent: spanID,
			Kind: obs.SpanCoordCommit, Start: ct0, Dur: s.tr.Now() - ct0,
			ARU: uint64(aru), Arg1: txn,
		})
	}

	if s.opts.UnsafeCommitBeforePrepareSync {
		// The deliberately broken schedule: prepares reach stable
		// storage only now, after the decision is already durable.
		if err := s.fanOut(u, func(i int) error { return s.shards[i].FlushTraced(csc) }); err != nil {
			return err
		}
	}

	// The decision is durable; apply it on every participant. Failures
	// past the commit point cannot abort the unit — recovery would redo
	// it — so the first error is reported but every shard still applies.
	// The crossApplying gauge brackets the fan-out so snapshot cuts
	// never straddle a half-applied unit (see AcquireSnapshot).
	s.crossApplying.Add(1)
	applyErr := s.fanOut(u, func(i int) error {
		if err := s.shards[i].CommitPreparedTraced(u.locals[i], csc); err != nil {
			return fmt.Errorf("shard %d: commit prepared: %w", i, err)
		}
		return nil
	})
	s.crossCommits.Add(1)
	s.crossApplying.Add(-1)
	if spanID != 0 {
		s.tr.EmitSpan(obs.Span{
			Trace: sc.Trace, ID: spanID, Parent: sc.Span,
			Kind: obs.Span2PC, Start: t0, Dur: s.tr.Now() - t0,
			ARU: uint64(aru), Arg1: txn, Arg2: uint64(len(u.order)),
		})
	}
	return applyErr
}

// fanOut runs fn over the unit's participants — in first-touch order
// under Sequential2PC, concurrently otherwise — and returns the first
// error (every participant runs regardless).
func (s *Disk) fanOut(u *unit, fn func(i int) error) error {
	if s.opts.Sequential2PC {
		var first error
		for _, i := range u.order {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make(chan error, len(u.order))
	for _, i := range u.order {
		go func(i int) { errs <- fn(i) }(i)
	}
	var first error
	for range u.order {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// abortLocals aborts the unit's local ARU on every participant (used
// when phase 1 fails; prepared locals abort like open ones).
func (s *Disk) abortLocals(u *unit) {
	for _, i := range u.order {
		_ = s.shards[i].AbortARU(u.locals[i])
	}
}

// AbortARU discards the unit on every shard it touched. Cross-shard
// aborts need no coordinator involvement: absence of the commit record
// is the abort, on disk as in memory (§3.3, presumed abort).
func (s *Disk) AbortARU(aru ARUID) error {
	u, err := s.take(aru)
	if err != nil {
		return err
	}
	var first error
	for _, i := range u.order {
		if err := s.shards[i].AbortARU(u.locals[i]); err != nil && first == nil {
			first = fmt.Errorf("shard %d: %w", i, err)
		}
	}
	if len(u.order) > 1 {
		s.crossAborts.Add(1)
	}
	return first
}

// CommitDurable is EndARU plus durability. A cross-shard unit is
// already durable when EndARU returns (prepares flushed, coordinator
// record synced); the trailing flush also settles the participants'
// own commit records so recovery need not consult the resolver.
func (s *Disk) CommitDurable(aru ARUID) error {
	if err := s.EndARU(aru); err != nil {
		return err
	}
	return s.Flush()
}
