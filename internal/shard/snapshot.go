package shard

import (
	"aru/internal/core"
)

// snapAcquireRetries bounds the acquire-validate-retry loop: under a
// continuous stream of cross-shard commits a perfectly stable cut may
// never materialize, so after this many attempts AcquireSnapshot
// returns the last cut and marks it skewed rather than livelocking.
const snapAcquireRetries = 16

// Snapshot is a pinned read-only view of the sharded disk: one core
// snapshot per shard, each a single published epoch of its engine.
//
// Consistency: within a shard the view is exactly as strong as a
// single-engine snapshot. Across shards, the 2PC apply fan-out
// publishes each participant's epoch only after the coordinator commit
// point, so a cut taken while no apply was in flight can never show a
// cross-shard unit partially applied. AcquireSnapshot validates that
// with the commit counters and retries; CrossConsistent reports
// whether the validation held (it fails only after snapAcquireRetries
// straight collisions with concurrent 2PC traffic).
type Snapshot struct {
	s      *Disk
	snaps  []*core.Snapshot
	skewed bool
}

// AcquireSnapshot pins one epoch on every shard and returns the cut.
// It retries until no cross-shard apply overlapped the acquisition
// window (or the retry budget runs out — see Snapshot).
func (s *Disk) AcquireSnapshot() (*Snapshot, error) {
	for attempt := 0; ; attempt++ {
		commits0 := s.crossCommits.Load()
		stable := s.crossApplying.Load() == 0
		snaps := make([]*core.Snapshot, len(s.shards))
		var err error
		for i, d := range s.shards {
			if snaps[i], err = d.AcquireSnapshot(); err != nil {
				for _, h := range snaps[:i] {
					h.Release()
				}
				return nil, err
			}
		}
		if stable && s.crossApplying.Load() == 0 && s.crossCommits.Load() == commits0 {
			return &Snapshot{s: s, snaps: snaps}, nil
		}
		if attempt >= snapAcquireRetries {
			return &Snapshot{s: s, snaps: snaps, skewed: true}, nil
		}
		for _, h := range snaps {
			h.Release()
		}
	}
}

// CrossConsistent reports whether the cut is guaranteed to contain no
// partially applied cross-shard unit. Per-shard consistency holds
// either way.
func (h *Snapshot) CrossConsistent() bool { return !h.skewed }

// Release unpins every shard's epoch. Idempotent (each underlying
// handle is).
func (h *Snapshot) Release() {
	for _, s := range h.snaps {
		s.Release()
	}
}

// Epochs returns the pinned epoch number of each shard, in shard
// order.
func (h *Snapshot) Epochs() []uint64 {
	out := make([]uint64, len(h.snaps))
	for i, s := range h.snaps {
		out[i] = s.Epoch()
	}
	return out
}

// Read reads block b as seen from aru's state in the pinned cut,
// routing on the block id exactly like Disk.Read. Resolving an
// external unit to its per-shard ARU takes the router mutex briefly;
// committed reads (Simple) stay lock-free end to end.
func (h *Snapshot) Read(aru ARUID, b BlockID, dst []byte) error {
	if err := checkBlock(b); err != nil {
		return err
	}
	i := h.s.shardOf(uint64(b))
	la, err := h.s.localARU(aru, i, false)
	if err != nil {
		return err
	}
	return h.snaps[i].Read(la, BlockID(h.s.localOf(uint64(b))), dst)
}

// ListBlocks walks lst in the pinned cut and translates the members
// back to external ids.
func (h *Snapshot) ListBlocks(aru ARUID, lst ListID) ([]BlockID, error) {
	if err := checkList(lst); err != nil {
		return nil, err
	}
	i := h.s.shardOf(uint64(lst))
	la, err := h.s.localARU(aru, i, false)
	if err != nil {
		return nil, err
	}
	members, err := h.snaps[i].ListBlocks(la, ListID(h.s.localOf(uint64(lst))))
	if err != nil {
		return nil, err
	}
	for j, b := range members {
		members[j] = BlockID(h.s.extOf(uint64(b), i))
	}
	return members, nil
}
