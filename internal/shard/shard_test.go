package shard

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"aru/internal/core"
	"aru/internal/disk"
	"aru/internal/seg"
)

func testLayout() seg.Layout {
	return seg.Layout{
		BlockSize: 1024,
		SegBytes:  8192,
		NumSegs:   96,
		MaxBlocks: 2048,
		MaxLists:  512,
	}
}

// rig is a sharded disk over recyclable in-memory devices.
type rig struct {
	devs  []*disk.Sim
	coord *disk.Sim
	d     *Disk
}

func newRig(t *testing.T, n int, o Options) *rig {
	t.Helper()
	if o.Params.Layout.NumSegs == 0 {
		o.Params.Layout = testLayout()
		o.Params.CheckpointEvery = 8
		o.Params.CacheBlocks = 128
	}
	r := &rig{coord: disk.NewMem(CoordBytes(64))}
	var devs []disk.Disk
	for i := 0; i < n; i++ {
		dev := disk.NewMem(o.Params.Layout.DiskBytes())
		r.devs = append(r.devs, dev)
		devs = append(devs, dev)
	}
	d, err := Format(devs, r.coord, o)
	if err != nil {
		t.Fatal(err)
	}
	r.d = d
	return r
}

// recycle models a whole-machine power cycle: every shard device and
// the coordinator device keep their contents, all volatile state is
// lost, and the disk is re-opened through full recovery.
func (r *rig) recycle(t *testing.T, o Options) []core.RecoveryReport {
	t.Helper()
	var devs []disk.Disk
	for i, dev := range r.devs {
		r.devs[i] = dev.Recycle()
		devs = append(devs, r.devs[i])
	}
	r.coord = r.coord.Recycle()
	d, reports, err := OpenReport(devs, r.coord, o)
	if err != nil {
		t.Fatal(err)
	}
	r.d = d
	return reports
}

// state captures the full committed logical state visible through the
// sharded disk: every list, its membership, and every member's bytes.
type state map[ListID]map[BlockID][]byte

func snapState(t *testing.T, d *Disk) state {
	t.Helper()
	lists, err := d.Lists(0)
	if err != nil {
		t.Fatal(err)
	}
	st := make(state)
	for _, l := range lists {
		members, err := d.ListBlocks(0, l)
		if err != nil {
			t.Fatal(err)
		}
		st[l] = make(map[BlockID][]byte)
		for _, b := range members {
			buf := make([]byte, d.BlockSize())
			if err := d.Read(0, b, buf); err != nil {
				t.Fatal(err)
			}
			st[l][b] = buf
		}
	}
	return st
}

func payload(d *Disk, tag int) []byte {
	p := make([]byte, d.BlockSize())
	for i := range p {
		p[i] = byte(tag*31 + i)
	}
	return p
}

// twoShardLists returns one list on each of the first two shards.
func twoShardLists(t *testing.T, d *Disk) (l0, l1 ListID) {
	t.Helper()
	for {
		l, err := d.NewList(0)
		if err != nil {
			t.Fatal(err)
		}
		switch d.ShardOfList(l) {
		case 0:
			if l0 == 0 {
				l0 = l
			}
		case 1:
			if l1 == 0 {
				l1 = l
			}
		}
		if l0 != 0 && l1 != 0 {
			return l0, l1
		}
	}
}

func TestRoutingRoundTrip(t *testing.T) {
	r := newRig(t, 4, Options{})
	defer r.d.Close()
	d := r.d
	// Lists spread round-robin; every id routes back to its shard, and
	// blocks are co-located with their list.
	seen := make(map[int]bool)
	for k := 0; k < 8; k++ {
		l, err := d.NewList(0)
		if err != nil {
			t.Fatal(err)
		}
		si := d.ShardOfList(l)
		seen[si] = true
		b, err := d.NewBlock(0, l, core.NilBlock)
		if err != nil {
			t.Fatal(err)
		}
		if d.ShardOfBlock(b) != si {
			t.Fatalf("block %d on shard %d, its list %d on shard %d", b, d.ShardOfBlock(b), l, si)
		}
		if members, err := d.ListBlocks(0, l); err != nil || len(members) != 1 || members[0] != b {
			t.Fatalf("ListBlocks(%d) = %v (%v), want [%d]", l, members, err, b)
		}
		info, err := d.StatBlock(0, b)
		if err != nil || info.ID != b || info.List != l {
			t.Fatalf("StatBlock(%d) = %+v (%v), want ID=%d List=%d", b, info, err, b, l)
		}
	}
	if len(seen) != 4 {
		t.Errorf("round-robin used %d of 4 shards", len(seen))
	}
	lists, err := d.Lists(0)
	if err != nil || len(lists) != 8 {
		t.Fatalf("Lists = %v (%v), want 8 lists", lists, err)
	}
	if !sort.SliceIsSorted(lists, func(i, j int) bool { return lists[i] < lists[j] }) {
		t.Errorf("Lists not sorted: %v", lists)
	}
}

func TestCrossShardMoveRejected(t *testing.T) {
	r := newRig(t, 2, Options{})
	defer r.d.Close()
	l0, l1 := twoShardLists(t, r.d)
	b, err := r.d.NewBlock(0, l0, core.NilBlock)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.d.MoveBlock(0, b, l1, core.NilBlock); !errors.Is(err, ErrCrossShardMove) {
		t.Errorf("cross-shard MoveBlock: got %v, want ErrCrossShardMove", err)
	}
	// Same-shard moves still work through the id translation.
	l0b, err := r.d.NewBlock(0, l0, core.NilBlock)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.d.MoveBlock(0, b, l0, l0b); err != nil {
		t.Fatal(err)
	}
	members, err := r.d.ListBlocks(0, l0)
	if err != nil || !reflect.DeepEqual(members, []BlockID{l0b, b}) {
		t.Errorf("after move: %v (%v), want [%d %d]", members, err, l0b, b)
	}
}

func TestFastPathSingleShard(t *testing.T) {
	r := newRig(t, 2, Options{})
	defer r.d.Close()
	d := r.d
	l0, _ := twoShardLists(t, d)
	a, err := d.BeginARU()
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.NewBlock(a, l0, core.NilBlock)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Write(a, b, payload(d, 1)); err != nil {
		t.Fatal(err)
	}
	if err := d.EndARU(a); err != nil {
		t.Fatal(err)
	}
	st := d.ShardStats()
	if st.FastPathCommits != 1 || st.CrossShardCommits != 0 {
		t.Errorf("fast=%d cross=%d, want 1/0", st.FastPathCommits, st.CrossShardCommits)
	}
	if st.CoordRecords != 0 {
		t.Errorf("fast path wrote %d coordinator records", st.CoordRecords)
	}
	if st.Engine.ARUsPrepared != 0 {
		t.Errorf("fast path prepared %d ARUs", st.Engine.ARUsPrepared)
	}
	// An empty unit also takes the fast path.
	a2, _ := d.BeginARU()
	if err := d.EndARU(a2); err != nil {
		t.Fatal(err)
	}
	if got := d.ShardStats().FastPathCommits; got != 2 {
		t.Errorf("FastPathCommits = %d, want 2", got)
	}
}

func TestCrossShardCommitAndRecovery(t *testing.T) {
	for _, seq := range []bool{true, false} {
		t.Run(fmt.Sprintf("sequential=%v", seq), func(t *testing.T) {
			o := Options{Sequential2PC: seq}
			r := newRig(t, 2, o)
			d := r.d
			l0, l1 := twoShardLists(t, d)
			a, err := d.BeginARU()
			if err != nil {
				t.Fatal(err)
			}
			b0, err := d.NewBlock(a, l0, core.NilBlock)
			if err != nil {
				t.Fatal(err)
			}
			b1, err := d.NewBlock(a, l1, core.NilBlock)
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Write(a, b0, payload(d, 10)); err != nil {
				t.Fatal(err)
			}
			if err := d.Write(a, b1, payload(d, 11)); err != nil {
				t.Fatal(err)
			}
			if err := d.EndARU(a); err != nil {
				t.Fatal(err)
			}
			st := d.ShardStats()
			if st.CrossShardCommits != 1 || st.Engine.ARUsPrepared != 2 || st.CoordRecords != 1 {
				t.Errorf("cross=%d prepared=%d coord=%d, want 1/2/1",
					st.CrossShardCommits, st.Engine.ARUsPrepared, st.CoordRecords)
			}
			want := snapState(t, d)
			if len(want[l0]) != 1 || len(want[l1]) != 1 {
				t.Fatalf("committed state incomplete: %v", want)
			}

			// The 2PC commit is durable by construction — no Flush was
			// called, yet a full-machine crash must keep the unit.
			reports := r.recycle(t, o)
			defer r.d.Close()
			inDoubt, committed := 0, 0
			for _, rpt := range reports {
				inDoubt += rpt.InDoubt
				committed += rpt.InDoubtCommitted
			}
			if inDoubt != 2 || committed != 2 {
				t.Errorf("recovery resolved %d/%d in doubt as committed, want 2/2", committed, inDoubt)
			}
			if got := snapState(t, r.d); !reflect.DeepEqual(got, want) {
				t.Errorf("recovered state differs:\n got %v\nwant %v", got, want)
			}
			if !bytes.Equal(want[l0][b0], payload(r.d, 10)) || !bytes.Equal(want[l1][b1], payload(r.d, 11)) {
				t.Errorf("recovered contents differ")
			}
			if err := r.d.VerifyInternal(); err != nil {
				t.Fatal(err)
			}
			if n, err := r.d.CheckDisk(); err != nil || n != 0 {
				t.Errorf("sweep freed %d (%v), want 0", n, err)
			}
		})
	}
}

func TestCrossShardAbortTraceless(t *testing.T) {
	r := newRig(t, 2, Options{})
	defer r.d.Close()
	d := r.d
	l0, l1 := twoShardLists(t, d)
	want := snapState(t, d)
	a, err := d.BeginARU()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.NewBlock(a, l0, core.NilBlock); err != nil {
		t.Fatal(err)
	}
	if _, err := d.NewBlock(a, l1, core.NilBlock); err != nil {
		t.Fatal(err)
	}
	if err := d.AbortARU(a); err != nil {
		t.Fatal(err)
	}
	if got := snapState(t, d); !reflect.DeepEqual(got, want) {
		t.Errorf("abort left traces:\n got %v\nwant %v", got, want)
	}
	if got := d.ShardStats().CrossShardAborts; got != 1 {
		t.Errorf("CrossShardAborts = %d, want 1", got)
	}
}

// TestCrossShardLeakSweep is the in-doubt abort path end to end: a
// cross-shard unit allocates blocks on two shards, its prepares become
// durable, and the machine dies before the coordinator record. Each
// shard's recovery must presume abort, erase the unit tracelessly, and
// its consistency sweep must free the unit's allocations on that
// shard.
func TestCrossShardLeakSweep(t *testing.T) {
	o := Options{Sequential2PC: true}
	r := newRig(t, 2, o)
	d := r.d
	l0, l1 := twoShardLists(t, d)
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	want := snapState(t, d)

	a, err := d.BeginARU()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.NewBlock(a, l0, core.NilBlock); err != nil {
		t.Fatal(err)
	}
	if _, err := d.NewBlock(a, l1, core.NilBlock); err != nil {
		t.Fatal(err)
	}
	// Run phase 1 by hand — prepare both participants and make the
	// prepares durable — and then crash before any coordinator record
	// exists, the in-doubt window the resolver must close as abort.
	d.mu.Lock()
	u := d.units[a]
	d.mu.Unlock()
	if len(u.order) != 2 {
		t.Fatalf("unit touched %d shards, want 2", len(u.order))
	}
	txn := d.nextTxn.Add(1) - 1
	for _, i := range u.order {
		if err := d.shards[i].PrepareARU(u.locals[i], txn); err != nil {
			t.Fatal(err)
		}
		if err := d.shards[i].Flush(); err != nil {
			t.Fatal(err)
		}
		if got := d.shards[i].PreparedARUs(); len(got) != 1 {
			t.Fatalf("shard %d: %d prepared ARUs, want 1", i, len(got))
		}
	}

	reports := r.recycle(t, o)
	defer r.d.Close()
	for i, rpt := range reports {
		if rpt.InDoubt != 1 || rpt.InDoubtAborted != 1 {
			t.Errorf("shard %d: in-doubt %d aborted %d, want 1/1", i, rpt.InDoubt, rpt.InDoubtAborted)
		}
		// The unit's NewBlock allocation on this shard is the leak the
		// sweep must free.
		if rpt.LeakedFreed == 0 {
			t.Errorf("shard %d: sweep freed nothing; aborted unit's allocation leaked", i)
		}
	}
	if got := snapState(t, r.d); !reflect.DeepEqual(got, want) {
		t.Errorf("presumed abort not traceless:\n got %v\nwant %v", got, want)
	}
	if err := r.d.VerifyInternal(); err != nil {
		t.Fatal(err)
	}
	if n, err := r.d.CheckDisk(); err != nil || n != 0 {
		t.Errorf("second sweep freed %d (%v), want 0", n, err)
	}
}

func TestCoordinatorGC(t *testing.T) {
	o := Options{}
	r := newRig(t, 2, o)
	d := r.d
	l0, l1 := twoShardLists(t, d)
	commit := func() {
		a, err := d.BeginARU()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.NewBlock(a, l0, core.NilBlock); err != nil {
			t.Fatal(err)
		}
		if _, err := d.NewBlock(a, l1, core.NilBlock); err != nil {
			t.Fatal(err)
		}
		if err := d.EndARU(a); err != nil {
			t.Fatal(err)
		}
	}
	commit()
	commit()
	if got := d.ShardStats().CoordRecords; got != 2 {
		t.Fatalf("CoordRecords = %d, want 2", got)
	}
	txnBefore := d.nextTxn.Load()
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := d.ShardStats().CoordRecords; got != 0 {
		t.Errorf("CoordRecords after checkpoint = %d, want 0", got)
	}
	// Transaction ids stay monotone across the reset.
	commit()
	if d.nextTxn.Load() <= txnBefore {
		t.Errorf("txn counter went backwards after reset")
	}
	want := snapState(t, d)
	// Recovery after the reset: the checkpoints hold everything, no
	// in-doubt units exist, and the erased records are never missed.
	reports := r.recycle(t, o)
	defer r.d.Close()
	for i, rpt := range reports {
		if rpt.InDoubtAborted != 0 {
			t.Errorf("shard %d: %d in-doubt aborted after clean GC", i, rpt.InDoubtAborted)
		}
	}
	if got := snapState(t, r.d); !reflect.DeepEqual(got, want) {
		t.Errorf("state differs after GC + recovery")
	}
	// The open-time txn floor still clears every id any shard has seen.
	if r.d.nextTxn.Load() < txnBefore {
		t.Errorf("reopened txn floor %d below pre-GC %d", r.d.nextTxn.Load(), txnBefore)
	}
}

func TestCoordinatorLogFull(t *testing.T) {
	// A 2-slot coordinator: the third cross-shard commit must fail
	// cleanly (unit aborted, not half-committed).
	o := Options{Params: core.Params{Layout: testLayout(), CheckpointEvery: 8, CacheBlocks: 128}}
	coord := disk.NewMem(CoordBytes(2))
	var devs []disk.Disk
	var sims []*disk.Sim
	for i := 0; i < 2; i++ {
		dev := disk.NewMem(o.Params.Layout.DiskBytes())
		sims = append(sims, dev)
		devs = append(devs, dev)
	}
	d, err := Format(devs, coord, o)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	l0, l1 := twoShardLists(t, d)
	cross := func() error {
		a, err := d.BeginARU()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.NewBlock(a, l0, core.NilBlock); err != nil {
			t.Fatal(err)
		}
		if _, err := d.NewBlock(a, l1, core.NilBlock); err != nil {
			t.Fatal(err)
		}
		return d.EndARU(a)
	}
	if err := cross(); err != nil {
		t.Fatal(err)
	}
	if err := cross(); err != nil {
		t.Fatal(err)
	}
	want := snapState(t, d)
	if err := cross(); !errors.Is(err, ErrCoordFull) {
		t.Fatalf("third commit: got %v, want ErrCoordFull", err)
	}
	if got := snapState(t, d); !reflect.DeepEqual(got, want) {
		t.Errorf("failed commit left traces")
	}
	// Checkpoint reclaims the log; commits work again.
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := cross(); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownARU(t *testing.T) {
	r := newRig(t, 2, Options{})
	defer r.d.Close()
	if err := r.d.EndARU(99); !errors.Is(err, core.ErrNoSuchARU) {
		t.Errorf("EndARU(99): got %v, want ErrNoSuchARU", err)
	}
	if err := r.d.Write(99, 1, make([]byte, r.d.BlockSize())); !errors.Is(err, core.ErrNoSuchARU) {
		t.Errorf("Write(99): got %v, want ErrNoSuchARU", err)
	}
}

func TestZeroIDRejected(t *testing.T) {
	// The routing arithmetic is undefined on the zero id (it would
	// underflow to shard (2^64-1) mod N); every routed operation must
	// reject it cleanly instead.
	r := newRig(t, 3, Options{})
	defer r.d.Close()
	d := r.d
	buf := make([]byte, d.BlockSize())
	if err := d.Read(0, core.NilBlock, buf); !errors.Is(err, core.ErrNoSuchBlock) {
		t.Errorf("Read(0): got %v, want ErrNoSuchBlock", err)
	}
	if err := d.Write(0, core.NilBlock, buf); !errors.Is(err, core.ErrNoSuchBlock) {
		t.Errorf("Write(0): got %v, want ErrNoSuchBlock", err)
	}
	if err := d.DeleteBlock(0, core.NilBlock); !errors.Is(err, core.ErrNoSuchBlock) {
		t.Errorf("DeleteBlock(0): got %v, want ErrNoSuchBlock", err)
	}
	if _, err := d.StatBlock(0, core.NilBlock); !errors.Is(err, core.ErrNoSuchBlock) {
		t.Errorf("StatBlock(0): got %v, want ErrNoSuchBlock", err)
	}
	if err := d.MoveBlock(0, core.NilBlock, 1, core.NilBlock); !errors.Is(err, core.ErrNoSuchBlock) {
		t.Errorf("MoveBlock(block 0): got %v, want ErrNoSuchBlock", err)
	}
	if _, err := d.NewBlock(0, core.NilList, core.NilBlock); !errors.Is(err, core.ErrNoSuchList) {
		t.Errorf("NewBlock(list 0): got %v, want ErrNoSuchList", err)
	}
	if err := d.DeleteList(0, core.NilList); !errors.Is(err, core.ErrNoSuchList) {
		t.Errorf("DeleteList(0): got %v, want ErrNoSuchList", err)
	}
	if _, err := d.ListBlocks(0, core.NilList); !errors.Is(err, core.ErrNoSuchList) {
		t.Errorf("ListBlocks(0): got %v, want ErrNoSuchList", err)
	}
	b, err := d.NewBlock(0, mustList(t, d), core.NilBlock)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.MoveBlock(0, b, core.NilList, core.NilBlock); !errors.Is(err, core.ErrNoSuchList) {
		t.Errorf("MoveBlock(list 0): got %v, want ErrNoSuchList", err)
	}
}

func mustList(t *testing.T, d *Disk) ListID {
	t.Helper()
	l, err := d.NewList(0)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestFormatErasesStaleCoordRecords(t *testing.T) {
	// Re-formatting a device that held an older coordinator log must
	// leave no CRC-valid record anywhere past the append point: the
	// open-time scan stops at the first invalid sector, so once the new
	// log fills slot 0 a stale record at slot 1 would be scanned as
	// committed and could wrongly resolve an in-doubt prepare whose txn
	// id collides with it.
	dev := disk.NewMem(CoordBytes(8))
	c, err := formatCoord(dev, 2)
	if err != nil {
		t.Fatal(err)
	}
	for txn := uint64(5); txn <= 7; txn++ {
		if err := c.commit(txn); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := formatCoord(dev, 2); err != nil {
		t.Fatal(err)
	}
	fresh, err := openCoord(dev, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := fresh.used(); got != 0 {
		t.Fatalf("re-formatted log scans %d records, want 0", got)
	}
	// Fill slot 0 of the new log; slots 1 and 2 once held txns 6 and 7.
	if err := fresh.commit(1); err != nil {
		t.Fatal(err)
	}
	reopened, err := openCoord(dev, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := reopened.used(); got != 1 {
		t.Errorf("log scans %d records, want 1", got)
	}
	if !reopened.has(1) {
		t.Errorf("fresh record for txn 1 missing")
	}
	for txn := uint64(5); txn <= 7; txn++ {
		if reopened.has(txn) {
			t.Errorf("stale record for txn %d survived the re-format", txn)
		}
	}
}

func TestOpenValidatesShardPlacement(t *testing.T) {
	// Routing is pure id arithmetic over the device count and order:
	// mounting a shard set with a different count or reordered devices
	// must fail rather than silently misroute every id.
	o := Options{}
	r := newRig(t, 3, o)
	l0, l1 := twoShardLists(t, r.d)
	b, err := r.d.NewBlock(0, l0, core.NilBlock)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.d.Write(0, b, bytes.Repeat([]byte{7}, r.d.BlockSize())); err != nil {
		t.Fatal(err)
	}
	_ = l1
	if err := r.d.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := r.d.Close(); err != nil {
		t.Fatal(err)
	}

	// Wrong device count: the coordinator header catches it.
	two := []disk.Disk{r.devs[0].Recycle(), r.devs[1].Recycle()}
	if _, err := Open(two, r.coord.Recycle(), o); !errors.Is(err, ErrShardMismatch) {
		t.Errorf("open with 2 of 3 devices: got %v, want ErrShardMismatch", err)
	}

	// Reordered devices: the per-device placement stamps catch it.
	swapped := []disk.Disk{r.devs[1].Recycle(), r.devs[0].Recycle(), r.devs[2].Recycle()}
	if _, err := Open(swapped, r.coord.Recycle(), o); !errors.Is(err, ErrShardMismatch) {
		t.Errorf("open with reordered devices: got %v, want ErrShardMismatch", err)
	}

	// An unstamped device (a bare single-engine image) is rejected too.
	lone := disk.NewMem(testLayout().DiskBytes())
	if _, err := core.Format(lone, core.Params{Layout: testLayout()}); err != nil {
		t.Fatal(err)
	}
	mixed := []disk.Disk{lone, r.devs[1].Recycle(), r.devs[2].Recycle()}
	if _, err := Open(mixed, r.coord.Recycle(), o); !errors.Is(err, ErrShardMismatch) {
		t.Errorf("open with an unstamped device: got %v, want ErrShardMismatch", err)
	}

	// The correct placement still mounts, state intact.
	var devs []disk.Disk
	for _, dev := range r.devs {
		devs = append(devs, dev.Recycle())
	}
	d, err := Open(devs, r.coord.Recycle(), o)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	buf := make([]byte, d.BlockSize())
	if err := d.Read(0, b, buf); err != nil || buf[0] != 7 {
		t.Errorf("Read after correct remount: err=%v buf[0]=%d", err, buf[0])
	}
}

func TestCheckpointCommitBarrier(t *testing.T) {
	// Checkpoint must be a barrier against concurrent 2PC commits: a
	// commit landing between one shard's checkpoint and the coordinator
	// reset would have its commit record erased while its prepare still
	// sat in that shard's post-checkpoint replay window, so a crash
	// would keep the unit on one shard and presume-abort it on another.
	// Hammer checkpoints against a committer, then crash and verify
	// every acknowledged unit survived whole.
	checkpointCommitBarrier(t, Options{})
}

// TestCheckpointCommitBarrierIncremental re-runs the commit-vs-
// checkpoint race with the incremental chain pinned to its two
// extremes: every checkpoint a delta (the publish barrier is the delta
// sync), and compaction on every other checkpoint (the publish barrier
// is the build-then-publish base flip to the other region). Either way
// a 2PC commit racing the checkpoint must not strand an in-doubt
// prepare behind a watermark whose coordinator record was reset.
func TestCheckpointCommitBarrierIncremental(t *testing.T) {
	t.Run("delta-chain", func(t *testing.T) {
		var o Options
		o.Params.CkptCompactEvery = 1 << 20 // never compact: pure delta appends
		checkpointCommitBarrier(t, o)
	})
	t.Run("compact-every-other", func(t *testing.T) {
		var o Options
		o.Params.CkptCompactEvery = 1 // delta, base, delta, base, ...
		checkpointCommitBarrier(t, o)
	})
}

func checkpointCommitBarrier(t *testing.T, o Options) {
	r := newRig(t, 2, o)
	d := r.d
	l0, l1 := twoShardLists(t, d)
	type acked struct {
		b0, b1  BlockID
		payload byte
	}
	var oks []acked
	done := make(chan struct{})
	go func() {
		defer close(done)
		for n := 0; n < 64; n++ {
			payload := byte(n + 1)
			a, err := d.BeginARU()
			if err != nil {
				t.Error(err)
				return
			}
			b0, err := d.NewBlock(a, l0, core.NilBlock)
			if err != nil {
				t.Error(err)
				return
			}
			b1, err := d.NewBlock(a, l1, core.NilBlock)
			if err != nil {
				t.Error(err)
				return
			}
			buf := bytes.Repeat([]byte{payload}, d.BlockSize())
			if err := d.Write(a, b0, buf); err != nil {
				t.Error(err)
				return
			}
			if err := d.Write(a, b1, buf); err != nil {
				t.Error(err)
				return
			}
			if err := d.EndARU(a); err != nil {
				// The 64-slot coordinator filled between successful
				// checkpoints; the unit aborted cleanly.
				if !errors.Is(err, ErrCoordFull) {
					t.Error(err)
					return
				}
				continue
			}
			oks = append(oks, acked{b0, b1, payload})
		}
	}()
	for {
		select {
		case <-done:
		default:
			// Most attempts fail while the committer's unit is open —
			// only the gaps between units can checkpoint. Keep trying.
			_ = d.Checkpoint()
			continue
		}
		break
	}
	if t.Failed() {
		t.FailNow()
	}
	if len(oks) == 0 {
		t.Fatal("no unit committed")
	}
	r.recycle(t, o)
	defer r.d.Close()
	buf := make([]byte, r.d.BlockSize())
	for _, u := range oks {
		for _, b := range []BlockID{u.b0, u.b1} {
			if err := r.d.Read(0, b, buf); err != nil {
				t.Fatalf("acked unit (payload %d): block %d lost after crash: %v", u.payload, b, err)
			}
			if buf[0] != u.payload {
				t.Fatalf("acked unit (payload %d): block %d holds %d after crash", u.payload, b, buf[0])
			}
		}
	}
}

// TestShardSnapshotCut pins a multi-shard snapshot under concurrent
// cross-shard commits and requires every observed cut to be
// all-or-nothing: a 2PC unit writing the same value to one block per
// shard must never be seen applied on one shard and not another. The
// pinned cut must also stay byte-stable while commits continue.
func TestShardSnapshotCut(t *testing.T) {
	r := newRig(t, 3, Options{})
	d := r.d
	bs := d.BlockSize()

	// One list and one block per shard, seeded with generation 0.
	blocks := make([]BlockID, d.Shards())
	pay := func(gen int) []byte {
		p := make([]byte, bs)
		for i := range p {
			p[i] = byte(gen*31 + i)
		}
		return p
	}
	for i := range blocks {
		var lst ListID
		for {
			l, err := d.NewList(core.ARUID(0))
			if err != nil {
				t.Fatal(err)
			}
			if d.ShardOfList(l) == i {
				lst = l
				break
			}
		}
		b, err := d.NewBlock(core.ARUID(0), lst, core.NilBlock)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Write(core.ARUID(0), b, pay(0)); err != nil {
			t.Fatal(err)
		}
		blocks[i] = b
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}

	const (
		pinGen = 5
		gens   = 25
	)
	commit := func(g int) error {
		a, err := d.BeginARU()
		if err != nil {
			return err
		}
		for _, b := range blocks {
			if err := d.Write(a, b, pay(g)); err != nil {
				return err
			}
		}
		return d.EndARU(a)
	}
	buf := make([]byte, bs)
	genOf := func(p []byte) int {
		for g := 0; g <= gens; g++ {
			if bytes.Equal(p, pay(g)) {
				return g
			}
		}
		return -1
	}
	readCut := func(h *Snapshot) []int {
		cut := make([]int, len(blocks))
		for j, b := range blocks {
			if err := h.Read(core.ARUID(0), b, buf); err != nil {
				t.Fatalf("cut read: %v", err)
			}
			cut[j] = genOf(buf)
		}
		return cut
	}

	// Deterministic pin: commit pinGen generations, then pin the cut.
	for g := 1; g <= pinGen; g++ {
		if err := commit(g); err != nil {
			t.Fatal(err)
		}
	}
	pinned, err := d.AcquireSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer pinned.Release()
	if !pinned.CrossConsistent() {
		t.Fatal("quiescent acquisition reported a skewed cut")
	}
	if n := len(pinned.Epochs()); n != d.Shards() {
		t.Fatalf("cut has %d epochs, want %d", n, d.Shards())
	}

	// Race: keep committing while cuts are taken; every consistent cut
	// must be all-or-nothing across shards.
	done := make(chan error, 1)
	go func() {
		for g := pinGen + 1; g <= gens; g++ {
			if err := commit(g); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; ; i++ {
		h, err := d.AcquireSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		cut := readCut(h)
		consistent := h.CrossConsistent()
		h.Release()
		if consistent {
			for j := 1; j < len(cut); j++ {
				if cut[j] != cut[0] {
					t.Fatalf("consistent cut %d straddles a cross-shard unit: generations %v", i, cut)
				}
			}
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			// The pinned cut must still serve its generation untouched.
			if cut := readCut(pinned); cut[0] != pinGen || cut[len(cut)-1] != pinGen {
				t.Fatalf("pinned cut drifted from generation %d: %v", pinGen, cut)
			}
			// The live disk has moved on to the final generation.
			if err := d.Read(core.ARUID(0), blocks[0], buf); err != nil {
				t.Fatal(err)
			}
			if g := genOf(buf); g != gens {
				t.Fatalf("live read sees generation %d, want %d", g, gens)
			}
			return
		default:
		}
	}
}
