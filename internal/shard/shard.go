// Package shard composes N independent LLD engines into one logical
// disk with cross-shard atomic recovery units (DESIGN.md §14).
//
// Each shard is a complete engine — its own device, log, checkpoints,
// cleaner and recovery — and identifiers route deterministically:
// external id e lives on shard (e-1) mod N as local id (e-1)/N + 1, so
// the shard of any block or list is computable from the id alone, with
// no directory. A block is always co-located with the list it was
// created in (NewBlock routes to the list's shard); lists spread
// round-robin across shards.
//
// An ARU that touches a single shard commits exactly as before — the
// fast path delegates to that engine's EndARU. A unit that touched
// several shards commits by two-phase commit: every participant engine
// prepares (its data and operations made redoable in its own log,
// sealed by a flush), the coordinator makes one commit record durable
// on a dedicated coordinator log — the commit point — and each
// participant then applies the decision. Crash recovery opens every
// shard with a resolver that consults the coordinator log: an in-doubt
// prepare with a durable commit record is redone, one without is
// erased tracelessly (presumed abort, paper §3.3 across engines).
package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
	"sync/atomic"

	"aru/internal/core"
	"aru/internal/disk"
	"aru/internal/ldnet"
	"aru/internal/obs"
)

// Identifier aliases, for readability of the routing arithmetic.
type (
	BlockID = core.BlockID
	ListID  = core.ListID
	ARUID   = core.ARUID
)

// The composition serves the same surfaces as a single engine: any
// ldnet server (and thus aru-serve -shards) can front it directly.
var (
	_ ldnet.Backend       = (*Disk)(nil)
	_ ldnet.TracedBackend = (*Disk)(nil)
)

// Errors of the sharded composition.
var (
	// ErrCrossShardMove reports a MoveBlock whose block and target list
	// live on different shards; membership cannot move between engines.
	ErrCrossShardMove = errors.New("shard: MoveBlock across shards is not supported")
	// ErrShardCount reports a device/shard count mismatch.
	ErrShardCount = errors.New("shard: need at least one shard device")
	// ErrShardMismatch reports a shard set mounted with a different
	// device count or order than it was formatted with. Routing is pure
	// id arithmetic over the device count and position, so such a mount
	// would silently misroute every external id; Format stamps each
	// device (and the coordinator header) with its placement and Open
	// validates it.
	ErrShardMismatch = errors.New("shard: device does not match its formatted shard placement")
)

// Options configures a sharded disk.
type Options struct {
	// Params configures every shard engine identically (one engine per
	// device). Params.CommitResolver is owned by the composition and
	// must be left nil.
	Params core.Params
	// Sequential2PC runs the prepare, flush and apply fan-outs one
	// shard at a time in shard order instead of concurrently. The
	// deterministic schedule is what the crash-state enumerator
	// replays.
	Sequential2PC bool
	// Tracer receives the composition's own events and spans (2PC,
	// coordinator commits); typically the same tracer as
	// Params.Tracer. Nil disables, as everywhere.
	Tracer *obs.Tracer
	// UnsafeCommitBeforePrepareSync deliberately breaks the protocol:
	// the coordinator record is made durable *before* the participants
	// flush their prepares. A crash between the coordinator sync and a
	// participant's flush then recovers the unit on some shards and not
	// others — the violation aru-crashcheck's must-fail run exists to
	// catch.
	UnsafeCommitBeforePrepareSync bool
}

// Stats extends the summed engine counters with the composition's own.
type Stats struct {
	// Engine is the field-wise sum of every shard's core.Stats.
	Engine core.Stats
	// PerShard holds each shard's own counters, in shard order.
	PerShard []core.Stats
	// FastPathCommits counts ARUs that ended on the single-shard fast
	// path (including empty units); CrossShardCommits counts 2PC
	// commits; CrossShardAborts counts aborted multi-shard units.
	FastPathCommits   int64
	CrossShardCommits int64
	CrossShardAborts  int64
	// CoordRecords is the number of live coordinator commit records.
	CoordRecords int64
}

// unit tracks one external ARU: the local ARU it opened on each
// participant shard, in first-touch order (the deterministic 2PC
// order).
type unit struct {
	locals map[int]ARUID
	order  []int
}

// Disk is N LLD engines plus a coordinator log, presented as one
// logical disk. It implements the same client surface as a single
// engine (aru.Interface, ldnet.Backend).
type Disk struct {
	shards []*core.LLD
	coord  *coordLog
	opts   Options
	tr     *obs.Tracer

	nextTxn atomic.Uint64
	listRR  atomic.Uint64 // round-robin cursor for NewList placement

	mu     sync.Mutex
	units  map[ARUID]*unit
	nextID ARUID
	closed bool

	// ckpt gates cross-shard commits against checkpoint: the 2PC path
	// holds it shared from first prepare to last apply; Checkpoint
	// holds it exclusively across the whole
	// checkpoint-every-shard-then-reset sequence. Without the barrier a
	// full 2PC commit could land between shard i's checkpoint and the
	// coordinator reset — the reset would erase its commit record while
	// its prepare still sat in shard i's post-checkpoint replay window,
	// so a crash would presume-abort the unit on shard i but keep it on
	// a later-checkpointed shard. Fast-path (single-shard) commits and
	// aborts need no gate: they write no prepare and no coordinator
	// record, and their open local ARUs already make a concurrent
	// engine checkpoint refuse.
	ckpt sync.RWMutex

	fastCommits  atomic.Int64
	crossCommits atomic.Int64
	crossAborts  atomic.Int64
	// crossApplying counts 2PC units between their coordinator commit
	// point and the end of the apply fan-out: while it is non-zero a
	// multi-shard snapshot cut could straddle the applies, so
	// AcquireSnapshot treats the window as unstable and retries.
	crossApplying atomic.Int64
}

// shardParams returns the per-engine params for shard i of n: the
// caller's Params with the resolver wired to the coordinator log.
func shardParams(o Options, c *coordLog) core.Params {
	p := o.Params
	p.CommitResolver = c.has
	return p
}

// Format initializes devs[i] as shard i and coordDev as the
// coordinator log, returning a fresh sharded disk. Each device is
// stamped with its shard index and the shard count, validated at Open.
func Format(devs []disk.Disk, coordDev disk.Disk, o Options) (*Disk, error) {
	if len(devs) == 0 {
		return nil, ErrShardCount
	}
	c, err := formatCoord(coordDev, len(devs))
	if err != nil {
		return nil, err
	}
	s := &Disk{coord: c, opts: o, tr: o.Tracer, units: make(map[ARUID]*unit)}
	p := shardParams(o, c)
	for i, dev := range devs {
		d, err := core.Format(dev, p)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		if err := stampShard(dev, i, len(devs)); err != nil {
			return nil, err
		}
		s.shards = append(s.shards, d)
	}
	s.nextTxn.Store(1)
	return s, nil
}

// Open mounts a formatted shard set, running each engine's crash
// recovery with in-doubt prepares resolved against the coordinator
// log.
func Open(devs []disk.Disk, coordDev disk.Disk, o Options) (*Disk, error) {
	d, _, err := OpenReport(devs, coordDev, o)
	return d, err
}

// OpenReport is Open plus each shard's recovery report, in shard
// order.
func OpenReport(devs []disk.Disk, coordDev disk.Disk, o Options) (*Disk, []core.RecoveryReport, error) {
	if len(devs) == 0 {
		return nil, nil, ErrShardCount
	}
	c, err := openCoord(coordDev, len(devs))
	if err != nil {
		return nil, nil, err
	}
	s := &Disk{coord: c, opts: o, tr: o.Tracer, units: make(map[ARUID]*unit)}
	p := shardParams(o, c)
	reports := make([]core.RecoveryReport, len(devs))
	// Shards recover in parallel: each engine owns its device outright,
	// and the only shared state — the coordinator log consulted by the
	// in-doubt resolver — is mutex-protected. In-doubt resolution itself
	// stays a pure read of the already-loaded commit set, so no ordering
	// between shard recoveries matters; the txn floor is folded after
	// the barrier.
	s.shards = make([]*core.LLD, len(devs))
	shardErrs := make([]error, len(devs))
	var wg sync.WaitGroup
	for i, dev := range devs {
		wg.Add(1)
		go func(i int, dev disk.Disk) {
			defer wg.Done()
			idx, cnt, err := readShardStamp(dev)
			if err != nil {
				shardErrs[i] = fmt.Errorf("shard %d: %w", i, err)
				return
			}
			if cnt != len(devs) || idx != i {
				shardErrs[i] = fmt.Errorf("%w: device %d stamped shard %d of %d, mounting as shard %d of %d",
					ErrShardMismatch, i, idx, cnt, i, len(devs))
				return
			}
			d, rpt, err := core.OpenReport(dev, p)
			if err != nil {
				shardErrs[i] = fmt.Errorf("shard %d: %w", i, err)
				return
			}
			s.shards[i] = d
			reports[i] = rpt
		}(i, dev)
	}
	wg.Wait()
	for _, err := range shardErrs {
		if err != nil {
			return nil, nil, err
		}
	}
	maxTxn := c.maxTxn()
	for _, rpt := range reports {
		if rpt.MaxPrepareTxn > maxTxn {
			maxTxn = rpt.MaxPrepareTxn
		}
	}
	// Transaction ids must never repeat while an old id could still sit
	// in a shard's replay window: floor past everything the coordinator
	// or any shard has seen.
	s.nextTxn.Store(maxTxn + 1)
	return s, reports, nil
}

// Each shard device carries a placement stamp in the reserved tail of
// its superblock sector: which shard of how many it was formatted as.
// The stamp sits well past the engine's own superblock encoding (which
// uses the first few dozen bytes of the 512-byte reserved region), so
// the engine never sees it, and it is validated on every Open — a
// reordered or re-counted device set must fail to mount rather than
// silently misroute ids.
const (
	shardStampOff   = 256
	shardStampMagic = "ARUSHRD\x01"
)

// stampShard embeds (index, count) into shard device dev's superblock
// sector, preserving the engine superblock around it.
func stampShard(dev disk.Disk, index, count int) error {
	sec := make([]byte, disk.SectorSize)
	if err := dev.ReadAt(sec, 0); err != nil {
		return fmt.Errorf("shard %d: reading superblock for placement stamp: %w", index, err)
	}
	p := sec[shardStampOff:]
	copy(p, shardStampMagic)
	binary.LittleEndian.PutUint32(p[8:], uint32(index))
	binary.LittleEndian.PutUint32(p[12:], uint32(count))
	binary.LittleEndian.PutUint32(p[16:], crc32.ChecksumIEEE(p[:16]))
	if err := dev.WriteAt(sec, 0); err != nil {
		return fmt.Errorf("shard %d: writing placement stamp: %w", index, err)
	}
	return dev.Sync()
}

// readShardStamp reads and validates the placement stamp of a shard
// device.
func readShardStamp(dev disk.Disk) (index, count int, err error) {
	sec := make([]byte, disk.SectorSize)
	if err := dev.ReadAt(sec, 0); err != nil {
		return 0, 0, err
	}
	p := sec[shardStampOff:]
	if string(p[:8]) != shardStampMagic ||
		crc32.ChecksumIEEE(p[:16]) != binary.LittleEndian.Uint32(p[16:]) {
		return 0, 0, fmt.Errorf("%w: device carries no placement stamp (not formatted as part of a shard set)", ErrShardMismatch)
	}
	return int(binary.LittleEndian.Uint32(p[8:])), int(binary.LittleEndian.Uint32(p[12:])), nil
}

// Shards returns the number of shards.
func (s *Disk) Shards() int { return len(s.shards) }

// Shard returns the i-th underlying engine, for inspection and tests.
func (s *Disk) Shard(i int) *core.LLD { return s.shards[i] }

// Routing: external id e ↔ (shard, local id). The arithmetic is the
// whole directory — both directions are pure functions of the id. It
// is defined on allocated ids only: the zero id (NilBlock/NilList)
// would underflow to shard (2^64-1) mod N, so every routed operation
// rejects it first (checkBlock/checkList).

func (s *Disk) shardOf(e uint64) int    { return int((e - 1) % uint64(len(s.shards))) }
func (s *Disk) localOf(e uint64) uint64 { return (e-1)/uint64(len(s.shards)) + 1 }
func (s *Disk) extOf(local uint64, shard int) uint64 {
	return (local-1)*uint64(len(s.shards)) + uint64(shard) + 1
}

// checkBlock rejects the nil/zero block id before routing.
func checkBlock(b BlockID) error {
	if b == core.NilBlock {
		return fmt.Errorf("%w: %d", core.ErrNoSuchBlock, b)
	}
	return nil
}

// checkList rejects the nil/zero list id before routing.
func checkList(l ListID) error {
	if l == core.NilList {
		return fmt.Errorf("%w: %d", core.ErrNoSuchList, l)
	}
	return nil
}

// ShardOfBlock returns the shard block b lives on (routing is public
// so tools like aru-inspect can label ids).
func (s *Disk) ShardOfBlock(b BlockID) int { return s.shardOf(uint64(b)) }

// ShardOfList returns the shard list l lives on.
func (s *Disk) ShardOfList(l ListID) int { return s.shardOf(uint64(l)) }

// localARU resolves the local ARU to use on shard i for external unit
// aru: Simple stays Simple; a unit opens one local ARU per shard on
// first touch. The bool reports whether the caller may proceed (false:
// the external unit does not exist).
func (s *Disk) localARU(aru ARUID, i int, create bool) (ARUID, error) {
	if aru == core.ARUID(0) {
		return 0, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	u, ok := s.units[aru]
	if !ok {
		return 0, fmt.Errorf("%w: %d", core.ErrNoSuchARU, aru)
	}
	if la, ok := u.locals[i]; ok {
		return la, nil
	}
	if !create {
		// Reads against a shard the unit never touched see the
		// committed state — exactly what the unit itself would see.
		return 0, nil
	}
	la, err := s.shards[i].BeginARU()
	if err != nil {
		return 0, err
	}
	u.locals[i] = la
	u.order = append(u.order, i)
	return la, nil
}

// Read implements the LD surface by routing on the block id.
func (s *Disk) Read(aru ARUID, b BlockID, dst []byte) error {
	if err := checkBlock(b); err != nil {
		return err
	}
	i := s.shardOf(uint64(b))
	la, err := s.localARU(aru, i, false)
	if err != nil {
		return err
	}
	return s.shards[i].Read(la, BlockID(s.localOf(uint64(b))), dst)
}

// Write routes on the block id; a unit's first write to a shard opens
// its local ARU there.
func (s *Disk) Write(aru ARUID, b BlockID, data []byte) error {
	if err := checkBlock(b); err != nil {
		return err
	}
	i := s.shardOf(uint64(b))
	la, err := s.localARU(aru, i, true)
	if err != nil {
		return err
	}
	return s.shards[i].Write(la, BlockID(s.localOf(uint64(b))), data)
}

// NewBlock allocates on the shard of lst (blocks are co-located with
// their list) and returns the external id.
func (s *Disk) NewBlock(aru ARUID, lst ListID, pred BlockID) (BlockID, error) {
	if err := checkList(lst); err != nil {
		return 0, err
	}
	i := s.shardOf(uint64(lst))
	if pred != core.NilBlock && s.shardOf(uint64(pred)) != i {
		return 0, fmt.Errorf("%w: %d", core.ErrNotMember, pred)
	}
	la, err := s.localARU(aru, i, true)
	if err != nil {
		return 0, err
	}
	lp := core.NilBlock
	if pred != core.NilBlock {
		lp = BlockID(s.localOf(uint64(pred)))
	}
	b, err := s.shards[i].NewBlock(la, ListID(s.localOf(uint64(lst))), lp)
	if err != nil {
		return 0, err
	}
	return BlockID(s.extOf(uint64(b), i)), nil
}

// NewList places the list round-robin across shards and returns the
// external id.
func (s *Disk) NewList(aru ARUID) (ListID, error) {
	i := int(s.listRR.Add(1)-1) % len(s.shards)
	la, err := s.localARU(aru, i, true)
	if err != nil {
		return 0, err
	}
	l, err := s.shards[i].NewList(la)
	if err != nil {
		return 0, err
	}
	return ListID(s.extOf(uint64(l), i)), nil
}

// DeleteBlock routes on the block id.
func (s *Disk) DeleteBlock(aru ARUID, b BlockID) error {
	if err := checkBlock(b); err != nil {
		return err
	}
	i := s.shardOf(uint64(b))
	la, err := s.localARU(aru, i, true)
	if err != nil {
		return err
	}
	return s.shards[i].DeleteBlock(la, BlockID(s.localOf(uint64(b))))
}

// DeleteList routes on the list id.
func (s *Disk) DeleteList(aru ARUID, lst ListID) error {
	if err := checkList(lst); err != nil {
		return err
	}
	i := s.shardOf(uint64(lst))
	la, err := s.localARU(aru, i, true)
	if err != nil {
		return err
	}
	return s.shards[i].DeleteList(la, ListID(s.localOf(uint64(lst))))
}

// MoveBlock moves within one shard; a cross-shard move would change
// the block's home engine and is rejected.
func (s *Disk) MoveBlock(aru ARUID, b BlockID, lst ListID, pred BlockID) error {
	if err := checkBlock(b); err != nil {
		return err
	}
	if err := checkList(lst); err != nil {
		return err
	}
	i := s.shardOf(uint64(b))
	if s.shardOf(uint64(lst)) != i {
		return fmt.Errorf("%w: block %d, list %d", ErrCrossShardMove, b, lst)
	}
	if pred != core.NilBlock && s.shardOf(uint64(pred)) != i {
		return fmt.Errorf("%w: %d", core.ErrNotMember, pred)
	}
	la, err := s.localARU(aru, i, true)
	if err != nil {
		return err
	}
	lp := core.NilBlock
	if pred != core.NilBlock {
		lp = BlockID(s.localOf(uint64(pred)))
	}
	return s.shards[i].MoveBlock(la, BlockID(s.localOf(uint64(b))), ListID(s.localOf(uint64(lst))), lp)
}

// ListBlocks routes on the list id and translates the members back to
// external ids.
func (s *Disk) ListBlocks(aru ARUID, lst ListID) ([]BlockID, error) {
	if err := checkList(lst); err != nil {
		return nil, err
	}
	i := s.shardOf(uint64(lst))
	la, err := s.localARU(aru, i, false)
	if err != nil {
		return nil, err
	}
	members, err := s.shards[i].ListBlocks(la, ListID(s.localOf(uint64(lst))))
	if err != nil {
		return nil, err
	}
	for j, b := range members {
		members[j] = BlockID(s.extOf(uint64(b), i))
	}
	return members, nil
}

// Lists fans out to every shard and merges the translated ids in
// ascending external order.
func (s *Disk) Lists(aru ARUID) ([]ListID, error) {
	var out []ListID
	for i, d := range s.shards {
		la, err := s.localARU(aru, i, false)
		if err != nil {
			return nil, err
		}
		lists, err := d.Lists(la)
		if err != nil {
			return nil, err
		}
		for _, l := range lists {
			out = append(out, ListID(s.extOf(uint64(l), i)))
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out, nil
}

// StatBlock routes on the block id.
func (s *Disk) StatBlock(aru ARUID, b BlockID) (core.BlockInfo, error) {
	if err := checkBlock(b); err != nil {
		return core.BlockInfo{}, err
	}
	i := s.shardOf(uint64(b))
	la, err := s.localARU(aru, i, false)
	if err != nil {
		return core.BlockInfo{}, err
	}
	info, err := s.shards[i].StatBlock(la, BlockID(s.localOf(uint64(b))))
	if err != nil {
		return core.BlockInfo{}, err
	}
	info.ID = b
	if info.List != core.NilList {
		info.List = ListID(s.extOf(uint64(info.List), i))
	}
	if info.Succ != core.NilBlock {
		info.Succ = BlockID(s.extOf(uint64(info.Succ), i))
	}
	return info, nil
}

// Flush makes every shard's committed state durable. The coordinator
// log needs no flush — its records are synced as they are written.
func (s *Disk) Flush() error { return s.FlushTraced(obs.SpanContext{}) }

// FlushTraced is Flush carrying trace context into each engine.
func (s *Disk) FlushTraced(sc obs.SpanContext) error {
	return s.forEachShard(func(d *core.LLD) error { return d.FlushTraced(sc) })
}

// forEachShard runs fn on every shard — concurrently, or in shard
// order under Sequential2PC — and returns the first error.
func (s *Disk) forEachShard(fn func(d *core.LLD) error) error {
	if s.opts.Sequential2PC || len(s.shards) == 1 {
		for _, d := range s.shards {
			if err := fn(d); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make(chan error, len(s.shards))
	for _, d := range s.shards {
		go func(d *core.LLD) { errs <- fn(d) }(d)
	}
	var first error
	for range s.shards {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Checkpoint checkpoints every shard and then resets the coordinator
// log: after every engine checkpointed, no replay window can hold an
// in-doubt prepare, so no recovery will ever ask about the logged
// transactions again. Fails (leaving the log intact) while any ARU is
// open, as a single engine's checkpoint does.
//
// The whole sequence runs under the commit gate held exclusively: a
// per-shard open-ARU check alone would not stop a full 2PC commit from
// landing between shard i's checkpoint and the reset, whose commit
// record the reset would then erase while shard i's replay window still
// held the prepare — a crash would presume-abort the unit there but
// keep it on any shard checkpointed after the commit.
func (s *Disk) Checkpoint() error {
	s.ckpt.Lock()
	defer s.ckpt.Unlock()
	for i, d := range s.shards {
		if err := d.Checkpoint(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return s.coord.reset()
}

// CheckDisk runs the consistency sweep on every shard, returning the
// total number of leaked blocks freed.
func (s *Disk) CheckDisk() (int, error) {
	total := 0
	for i, d := range s.shards {
		n, err := d.CheckDisk()
		total += n
		if err != nil {
			return total, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return total, nil
}

// VerifyInternal checks every shard's in-memory invariants.
func (s *Disk) VerifyInternal() error {
	for i, d := range s.shards {
		if err := d.VerifyInternal(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Stats returns the field-wise sum of all shard counters (the
// ldnet.Backend surface; ShardStats has the per-shard breakdown).
func (s *Disk) Stats() core.Stats {
	var sum core.Stats
	for _, d := range s.shards {
		addStats(&sum, d.Stats())
	}
	return sum
}

// ShardStats returns the composition's full counter set.
func (s *Disk) ShardStats() Stats {
	st := Stats{
		FastPathCommits:   s.fastCommits.Load(),
		CrossShardCommits: s.crossCommits.Load(),
		CrossShardAborts:  s.crossAborts.Load(),
		CoordRecords:      s.coord.used(),
	}
	for _, d := range s.shards {
		ds := d.Stats()
		st.PerShard = append(st.PerShard, ds)
		addStats(&st.Engine, ds)
	}
	return st
}

// LastBatch returns the largest group-commit batch id across shards
// (the ldnet slow-op log annotation).
func (s *Disk) LastBatch() uint64 {
	var m uint64
	for _, d := range s.shards {
		if b := d.LastBatch(); b > m {
			m = b
		}
	}
	return m
}

// BlockSize returns the (uniform) block size of the shard engines.
func (s *Disk) BlockSize() int { return s.shards[0].BlockSize() }

// Close shuts every shard engine down. Open units are discarded, as
// a crash would (their prepares, if any, resolve by presumed abort).
func (s *Disk) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	var first error
	for _, d := range s.shards {
		if err := d.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func addStats(dst *core.Stats, src core.Stats) {
	dst.Reads += src.Reads
	dst.Writes += src.Writes
	dst.CoalescedWrites += src.CoalescedWrites
	dst.NewBlocks += src.NewBlocks
	dst.DeleteBlocks += src.DeleteBlocks
	dst.NewLists += src.NewLists
	dst.DeleteLists += src.DeleteLists
	dst.ARUsBegun += src.ARUsBegun
	dst.ARUsCommitted += src.ARUsCommitted
	dst.ARUsAborted += src.ARUsAborted
	dst.ARUsPrepared += src.ARUsPrepared
	dst.SegmentsWritten += src.SegmentsWritten
	dst.SegmentsCleaned += src.SegmentsCleaned
	dst.BlocksRelocated += src.BlocksRelocated
	dst.Checkpoints += src.Checkpoints
	dst.MergeFallbacks += src.MergeFallbacks
	dst.LeakedBlocksFreed += src.LeakedBlocksFreed
	dst.ShadowRecords += src.ShadowRecords
	dst.AltRecords += src.AltRecords
	dst.ShadowCreated += src.ShadowCreated
	dst.CommittedCreated += src.CommittedCreated
	dst.RecordsPromoted += src.RecordsPromoted
	dst.BlocksMaterialized += src.BlocksMaterialized
	dst.PrevVersionsEmitted += src.PrevVersionsEmitted
	dst.ListOpsReplayed += src.ListOpsReplayed
	dst.MovesExecuted += src.MovesExecuted
	dst.CacheHits += src.CacheHits
	dst.CacheMisses += src.CacheMisses
	dst.PredecessorSearchSteps += src.PredecessorSearchSteps
	dst.EntriesLogged += src.EntriesLogged
	dst.RecoveredEntries += src.RecoveredEntries
	dst.RecoveredARUs += src.RecoveredARUs
	dst.DroppedARUs += src.DroppedARUs
	dst.Flushes += src.Flushes
	dst.CommitBatches += src.CommitBatches
	dst.BatchedCommits += src.BatchedCommits
}
