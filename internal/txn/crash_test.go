package txn

import (
	"encoding/binary"
	"testing"

	"aru/internal/core"
	"aru/internal/crashenum"
	"aru/internal/disk"
	"aru/internal/seg"
)

// TestCrashSweepConservation crashes a transfer workload after every
// possible device write. At any crash point the recovered ledger must
// be a consistent snapshot: the total is conserved and every account is
// within the range the transfers could have produced — no transaction
// is ever half-applied.
func TestCrashSweepConservation(t *testing.T) {
	layout := seg.Layout{
		BlockSize: 1024, SegBytes: 16384, NumSegs: 96,
		MaxBlocks: 4096, MaxLists: 2048,
	}
	const accounts = 4
	const perAccount = 100
	const rounds = 15

	// The workload: open the ledger durably, then transfer in a fixed
	// pattern with a durable commit every third round.
	run := func(dev *disk.Sim) []core.BlockID {
		d, err := core.Format(dev, core.Params{Layout: layout})
		if err != nil {
			return nil
		}
		m := NewManager(d)
		bs := d.BlockSize()
		ids := make([]core.BlockID, accounts)
		err = m.Run(true, func(tx *Txn) error {
			lst, err := tx.NewList()
			if err != nil {
				return err
			}
			for i := range ids {
				b, err := tx.NewBlock(lst, core.NilBlock)
				if err != nil {
					return err
				}
				ids[i] = b
				buf := make([]byte, bs)
				binary.LittleEndian.PutUint64(buf, perAccount)
				if err := tx.Write(b, buf); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return ids
		}
		for r := 0; r < rounds; r++ {
			from, to := ids[r%accounts], ids[(r+1)%accounts]
			durable := r%3 == 2
			err := m.Run(durable, func(tx *Txn) error {
				buf := make([]byte, bs)
				if err := tx.Read(from, buf); err != nil {
					return err
				}
				fv := binary.LittleEndian.Uint64(buf)
				if err := tx.Read(to, buf); err != nil {
					return err
				}
				tv := binary.LittleEndian.Uint64(buf)
				amt := uint64(r%7 + 1)
				if fv < amt {
					return nil
				}
				binary.LittleEndian.PutUint64(buf, fv-amt)
				for i := 8; i < len(buf); i++ {
					buf[i] = 0
				}
				if err := tx.Write(from, buf); err != nil {
					return err
				}
				binary.LittleEndian.PutUint64(buf, tv+amt)
				return tx.Write(to, buf)
			})
			if err != nil {
				return ids
			}
		}
		_ = d.Close()
		return ids
	}

	clean := disk.NewMem(layout.DiskBytes())
	ids := run(clean)
	if ids == nil {
		t.Fatal("clean run failed")
	}
	total := clean.Stats().Writes

	for crash := int64(1); crash <= total; crash++ {
		dev := disk.NewMem(layout.DiskBytes())
		dev.SetFaultPlan(disk.FaultPlan{CrashAfterWrites: crash, TornSectors: int(crash % 5)})
		got := run(dev)
		if !dev.Crashed() {
			continue
		}
		d2, err := crashenum.Recover(dev, core.Params{})
		if err != nil {
			continue // crash during Format
		}
		buf := make([]byte, d2.BlockSize())
		var sum uint64
		readable := 0
		for _, b := range got {
			if b == core.NilBlock {
				continue
			}
			if err := d2.Read(0, b, buf); err != nil {
				continue
			}
			readable++
			sum += binary.LittleEndian.Uint64(buf)
		}
		if readable == 0 {
			continue // ledger never became durable
		}
		if readable != accounts {
			t.Fatalf("crash %d: only %d of %d accounts recovered — the opening transaction tore",
				crash, readable, accounts)
		}
		if sum != accounts*perAccount {
			t.Fatalf("crash %d: total %d, want %d — a transfer tore", crash, sum, accounts*perAccount)
		}
	}
}
