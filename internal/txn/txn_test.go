package txn

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"

	"aru/internal/core"
	"aru/internal/crashenum"
	"aru/internal/disk"
	"aru/internal/seg"
)

func newTestManager(t *testing.T) (*Manager, *core.LLD, *disk.Sim) {
	t.Helper()
	layout := seg.Layout{
		BlockSize: 1024, SegBytes: 16384, NumSegs: 128,
		MaxBlocks: 8192, MaxLists: 4096,
	}
	dev := disk.NewMem(layout.DiskBytes())
	d, err := core.Format(dev, core.Params{Layout: layout})
	if err != nil {
		t.Fatal(err)
	}
	return NewManager(d), d, dev
}

// account helpers: one block per account, balance in the first 8 bytes.
func putBalance(t *testing.T, tx *Txn, b core.BlockID, v uint64, bsize int) {
	t.Helper()
	buf := make([]byte, bsize)
	binary.LittleEndian.PutUint64(buf, v)
	if err := tx.Write(b, buf); err != nil {
		t.Fatal(err)
	}
}

func getBalance(tx *Txn, b core.BlockID, bsize int) (uint64, error) {
	buf := make([]byte, bsize)
	if err := tx.Read(b, buf); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf), nil
}

func TestCommitAndRollback(t *testing.T) {
	m, d, _ := newTestManager(t)
	bs := d.BlockSize()

	var acct core.BlockID
	err := m.Run(false, func(tx *Txn) error {
		lst, err := tx.NewList()
		if err != nil {
			return err
		}
		acct, err = tx.NewBlock(lst, core.NilBlock)
		if err != nil {
			return err
		}
		putBalance(t, tx, acct, 100, bs)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// A rolled-back update leaves no trace.
	tx, err := m.Begin()
	if err != nil {
		t.Fatal(err)
	}
	putBalance(t, tx, acct, 999, bs)
	if v, _ := getBalance(tx, acct, bs); v != 999 {
		t.Fatalf("transaction does not read its own write: %d", v)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	tx2, _ := m.Begin()
	v, err := getBalance(tx2, acct, bs)
	if err != nil {
		t.Fatal(err)
	}
	if v != 100 {
		t.Fatalf("rollback leaked: balance %d", v)
	}
	if err := tx2.Commit(false); err != nil {
		t.Fatal(err)
	}

	// Use-after-finish is rejected.
	if err := tx.Write(acct, make([]byte, bs)); !errors.Is(err, ErrDone) {
		t.Fatalf("write on finished txn: %v", err)
	}
}

// TestBankConservation is the serializability smoke test: concurrent
// transfers between accounts must conserve the total.
func TestBankConservation(t *testing.T) {
	m, d, _ := newTestManager(t)
	bs := d.BlockSize()
	const accounts = 6
	const perAccount = 1000

	var ids [accounts]core.BlockID
	err := m.Run(false, func(tx *Txn) error {
		lst, err := tx.NewList()
		if err != nil {
			return err
		}
		for i := range ids {
			b, err := tx.NewBlock(lst, core.NilBlock)
			if err != nil {
				return err
			}
			ids[i] = b
			putBalance(t, tx, b, perAccount, bs)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const transfers = 40
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < transfers; i++ {
				from := ids[(w+i)%accounts]
				to := ids[(w+i+1+i%3)%accounts]
				if from == to {
					continue
				}
				err := m.Run(false, func(tx *Txn) error {
					fv, err := getBalance(tx, from, bs)
					if err != nil {
						return err
					}
					tv, err := getBalance(tx, to, bs)
					if err != nil {
						return err
					}
					amount := uint64(1 + (w+i)%7)
					if fv < amount {
						return nil // insufficient funds: no-op
					}
					putBalance(t, tx, from, fv-amount, bs)
					putBalance(t, tx, to, tv+amount, bs)
					return nil
				})
				if err != nil {
					errCh <- fmt.Errorf("worker %d transfer %d: %w", w, i, err)
					return
				}
			}
			errCh <- nil
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}

	var total uint64
	err = m.Run(false, func(tx *Txn) error {
		total = 0
		for _, b := range ids {
			v, err := getBalance(tx, b, bs)
			if err != nil {
				return err
			}
			total += v
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != accounts*perAccount {
		t.Fatalf("money not conserved: %d, want %d", total, accounts*perAccount)
	}
	if err := d.VerifyInternal(); err != nil {
		t.Fatal(err)
	}
}

// TestLostUpdatePrevented: two increments through the transaction layer
// never collapse into one (which raw ARUs would allow — last committer
// wins).
func TestLostUpdatePrevented(t *testing.T) {
	m, d, _ := newTestManager(t)
	bs := d.BlockSize()
	var ctr core.BlockID
	err := m.Run(false, func(tx *Txn) error {
		lst, err := tx.NewList()
		if err != nil {
			return err
		}
		ctr, err = tx.NewBlock(lst, core.NilBlock)
		if err != nil {
			return err
		}
		putBalance(t, tx, ctr, 0, bs)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 6
	const increments = 30
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < increments; i++ {
				err := m.Run(false, func(tx *Txn) error {
					v, err := getBalance(tx, ctr, bs)
					if err != nil {
						return err
					}
					putBalance(t, tx, ctr, v+1, bs)
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	var final uint64
	_ = m.Run(false, func(tx *Txn) error {
		var err error
		final, err = getBalance(tx, ctr, bs)
		return err
	})
	if final != workers*increments {
		t.Fatalf("lost updates: counter %d, want %d", final, workers*increments)
	}
}

// TestDurableCommitSurvivesCrash: a durable transaction is recovered; a
// non-durable one committed just before the crash is not (and that is
// the documented contract).
func TestDurableCommitSurvivesCrash(t *testing.T) {
	m, d, dev := newTestManager(t)
	bs := d.BlockSize()
	var acct core.BlockID
	err := m.Run(true, func(tx *Txn) error {
		lst, err := tx.NewList()
		if err != nil {
			return err
		}
		acct, err = tx.NewBlock(lst, core.NilBlock)
		if err != nil {
			return err
		}
		putBalance(t, tx, acct, 777, bs)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Non-durable follow-up.
	if err := m.Run(false, func(tx *Txn) error {
		putBalance(t, tx, acct, 888, bs)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	d2, err := crashenum.Recover(dev, core.Params{})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, bs)
	if err := d2.Read(0, acct, buf); err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(buf); got != 777 {
		t.Fatalf("recovered balance %d, want the durable 777", got)
	}
}

// TestWaitDieMakesProgress forces heavy contention on one block and
// verifies every transaction eventually succeeds via Run's retry.
func TestWaitDieMakesProgress(t *testing.T) {
	m, d, _ := newTestManager(t)
	bs := d.BlockSize()
	var hot core.BlockID
	err := m.Run(false, func(tx *Txn) error {
		lst, err := tx.NewList()
		if err != nil {
			return err
		}
		hot, err = tx.NewBlock(lst, core.NilBlock)
		if err != nil {
			return err
		}
		putBalance(t, tx, hot, 0, bs)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 10; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				if err := m.Run(false, func(tx *Txn) error {
					v, err := getBalance(tx, hot, bs)
					if err != nil {
						return err
					}
					putBalance(t, tx, hot, v+1, bs)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	var final uint64
	_ = m.Run(false, func(tx *Txn) error {
		var err error
		final, err = getBalance(tx, hot, bs)
		return err
	})
	if final != 150 {
		t.Fatalf("hot counter %d, want 150", final)
	}
}

// TestReadSharing: concurrent readers do not block each other (both
// acquire shared locks inside open transactions simultaneously).
func TestReadSharing(t *testing.T) {
	m, d, _ := newTestManager(t)
	bs := d.BlockSize()
	var b core.BlockID
	err := m.Run(false, func(tx *Txn) error {
		lst, err := tx.NewList()
		if err != nil {
			return err
		}
		b, err = tx.NewBlock(lst, core.NilBlock)
		if err != nil {
			return err
		}
		putBalance(t, tx, b, 5, bs)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t1, _ := m.Begin()
	t2, _ := m.Begin()
	v1, err := getBalance(t1, b, bs)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := getBalance(t2, b, bs)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != 5 || v2 != 5 {
		t.Fatalf("shared reads: %d %d", v1, v2)
	}
	if err := t1.Commit(false); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(false); err != nil {
		t.Fatal(err)
	}
}

var _ = bytes.Equal

// TestTxnListOps covers the structural operations of the transaction
// API.
func TestTxnListOps(t *testing.T) {
	m, d, _ := newTestManager(t)
	var lst core.ListID
	var blocks []core.BlockID
	err := m.Run(false, func(tx *Txn) error {
		var err error
		lst, err = tx.NewList()
		if err != nil {
			return err
		}
		for i := 0; i < 3; i++ {
			b, err := tx.NewBlock(lst, core.NilBlock)
			if err != nil {
				return err
			}
			blocks = append(blocks, b)
		}
		got, err := tx.ListBlocks(lst)
		if err != nil {
			return err
		}
		if len(got) != 3 {
			t.Fatalf("ListBlocks inside txn: %v", got)
		}
		return tx.DeleteBlock(blocks[0])
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.ListBlocks(0, lst)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("after txn: %v", got)
	}
	// Delete the whole list in a second transaction.
	if err := m.Run(false, func(tx *Txn) error {
		return tx.DeleteList(lst)
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ListBlocks(0, lst); err == nil {
		t.Fatal("list survived DeleteList")
	}
}

// TestRunPropagatesRealErrors: Run must not retry non-conflict errors.
func TestRunPropagatesRealErrors(t *testing.T) {
	m, _, _ := newTestManager(t)
	calls := 0
	sentinel := errors.New("boom")
	err := m.Run(false, func(tx *Txn) error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if calls != 1 {
		t.Fatalf("non-retryable error retried %d times", calls)
	}
}

// TestLockUpgrade: a transaction that reads then writes the same block
// upgrades its shared lock in place.
func TestLockUpgrade(t *testing.T) {
	m, d, _ := newTestManager(t)
	bs := d.BlockSize()
	var b core.BlockID
	if err := m.Run(false, func(tx *Txn) error {
		lst, err := tx.NewList()
		if err != nil {
			return err
		}
		b, err = tx.NewBlock(lst, core.NilBlock)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(false, func(tx *Txn) error {
		if _, err := getBalance(tx, b, bs); err != nil { // S lock
			return err
		}
		putBalance(t, tx, b, 7, bs) // upgrade to X
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var v uint64
	_ = m.Run(false, func(tx *Txn) error {
		var err error
		v, err = getBalance(tx, b, bs)
		return err
	})
	if v != 7 {
		t.Fatalf("upgrade lost the write: %d", v)
	}
}
