// Package txn builds full transactions on top of atomic recovery
// units, demonstrating the layering the paper prescribes: ARUs provide
// failure atomicity at the disk level, while "full data isolation and
// mechanisms for durability must be provided by the disk system
// clients" (§7). A transaction is an ARU plus strict two-phase locking
// (serializability) plus an optional flush at commit (durability) —
// the light-weight path §3 contrasts with mapping transactions onto
// file-system semantics.
//
// Deadlocks are avoided with the classic wait-die policy: an older
// transaction waits for a younger lock holder, a younger one aborts
// with ErrAborted and should retry. Locks are block- and
// list-granularity, shared for reads and exclusive for writes, held
// until commit or rollback.
package txn

import (
	"errors"
	"fmt"
	"sync"

	"aru/internal/core"
)

// Errors returned by the transaction layer.
var (
	// ErrAborted reports that the transaction lost a wait-die conflict
	// (or was rolled back) and must be retried by the caller.
	ErrAborted = errors.New("txn: transaction aborted, retry")
	// ErrDone reports use of a committed or rolled-back transaction.
	ErrDone = errors.New("txn: transaction already finished")
)

// resKind discriminates lockable resources.
type resKind uint8

const (
	resBlock resKind = iota
	resList
)

// resource identifies one lockable object.
type resource struct {
	kind resKind
	id   uint64
}

func blockRes(b core.BlockID) resource { return resource{resBlock, uint64(b)} }
func listRes(l core.ListID) resource   { return resource{resList, uint64(l)} }

// lockState is the per-resource lock: either one exclusive holder or
// any number of shared holders.
type lockState struct {
	holders map[uint64]bool // txn ids
	excl    bool            // holders (exactly one) hold exclusively
}

// Manager coordinates transactions over one logical disk.
type Manager struct {
	d *core.LLD

	mu     sync.Mutex
	cond   *sync.Cond
	locks  map[resource]*lockState
	nextID uint64
}

// NewManager returns a transaction manager for d. All transactions on a
// disk must go through a single manager (the manager is the lock
// table); LD operations issued outside it are unsynchronized, exactly
// as the paper warns.
func NewManager(d *core.LLD) *Manager {
	m := &Manager{
		d:      d,
		locks:  make(map[resource]*lockState),
		nextID: 1,
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Txn is one transaction: an ARU plus the locks acquired so far.
type Txn struct {
	mgr  *Manager
	aru  core.ARUID
	id   uint64 // wait-die age: smaller = older = wins conflicts
	held []resource
	done bool
}

// Begin starts a transaction.
func (m *Manager) Begin() (*Txn, error) {
	aru, err := m.d.BeginARU()
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	id := m.nextID
	m.nextID++
	m.mu.Unlock()
	return &Txn{mgr: m, aru: aru, id: id}, nil
}

// acquire takes the lock on r (exclusive if excl), blocking while an
// older transaction holds it incompatibly and dying (ErrAborted, with
// the whole transaction rolled back) when a younger waiter meets an
// older holder — wait-die.
func (t *Txn) acquire(r resource, excl bool) error {
	m := t.mgr
	m.mu.Lock()
	for {
		ls := m.locks[r]
		if ls == nil || len(ls.holders) == 0 {
			m.locks[r] = &lockState{holders: map[uint64]bool{t.id: true}, excl: excl}
			break
		}
		if ls.holders[t.id] {
			if !excl || ls.excl {
				break // already compatible
			}
			if len(ls.holders) == 1 {
				ls.excl = true // upgrade S→X as sole holder
				break
			}
		} else if !excl && !ls.excl {
			ls.holders[t.id] = true // share
			break
		}
		// Incompatible. Wait-die: die if any current holder is older.
		for holder := range ls.holders {
			if holder < t.id && holder != t.id {
				m.mu.Unlock()
				_ = t.Rollback()
				return fmt.Errorf("%w: lock conflict on %v", ErrAborted, r)
			}
		}
		m.cond.Wait()
	}
	m.mu.Unlock()
	t.held = append(t.held, r)
	return nil
}

// release drops every lock the transaction holds.
func (t *Txn) release() {
	m := t.mgr
	m.mu.Lock()
	for _, r := range t.held {
		if ls := m.locks[r]; ls != nil {
			delete(ls.holders, t.id)
			if len(ls.holders) == 0 {
				delete(m.locks, r)
			}
		}
	}
	t.held = nil
	m.cond.Broadcast()
	m.mu.Unlock()
}

func (t *Txn) check() error {
	if t.done {
		return ErrDone
	}
	return nil
}

// Read reads block b under a shared lock; within the transaction the
// ARU's shadow version is visible (read-your-writes).
func (t *Txn) Read(b core.BlockID, dst []byte) error {
	if err := t.check(); err != nil {
		return err
	}
	if err := t.acquire(blockRes(b), false); err != nil {
		return err
	}
	return t.mgr.d.Read(t.aru, b, dst)
}

// Write writes block b under an exclusive lock.
func (t *Txn) Write(b core.BlockID, data []byte) error {
	if err := t.check(); err != nil {
		return err
	}
	if err := t.acquire(blockRes(b), true); err != nil {
		return err
	}
	return t.mgr.d.Write(t.aru, b, data)
}

// NewBlock allocates a block in list lst after pred, locking the list
// exclusively (list structure changes).
func (t *Txn) NewBlock(lst core.ListID, pred core.BlockID) (core.BlockID, error) {
	if err := t.check(); err != nil {
		return core.NilBlock, err
	}
	if err := t.acquire(listRes(lst), true); err != nil {
		return core.NilBlock, err
	}
	b, err := t.mgr.d.NewBlock(t.aru, lst, pred)
	if err != nil {
		return core.NilBlock, err
	}
	// The fresh block belongs to this transaction until commit.
	if err := t.acquire(blockRes(b), true); err != nil {
		return core.NilBlock, err
	}
	return b, nil
}

// NewList allocates a list owned exclusively by the transaction until
// commit.
func (t *Txn) NewList() (core.ListID, error) {
	if err := t.check(); err != nil {
		return core.NilList, err
	}
	l, err := t.mgr.d.NewList(t.aru)
	if err != nil {
		return core.NilList, err
	}
	if err := t.acquire(listRes(l), true); err != nil {
		return core.NilList, err
	}
	return l, nil
}

// DeleteBlock removes block b (exclusive locks on the block and its
// list).
func (t *Txn) DeleteBlock(b core.BlockID) error {
	if err := t.check(); err != nil {
		return err
	}
	if err := t.acquire(blockRes(b), true); err != nil {
		return err
	}
	info, err := t.mgr.d.StatBlock(t.aru, b)
	if err != nil {
		return err
	}
	if info.List != core.NilList {
		if err := t.acquire(listRes(info.List), true); err != nil {
			return err
		}
	}
	return t.mgr.d.DeleteBlock(t.aru, b)
}

// DeleteList removes list lst and its members (exclusive list lock).
func (t *Txn) DeleteList(lst core.ListID) error {
	if err := t.check(); err != nil {
		return err
	}
	if err := t.acquire(listRes(lst), true); err != nil {
		return err
	}
	return t.mgr.d.DeleteList(t.aru, lst)
}

// ListBlocks enumerates lst under a shared lock.
func (t *Txn) ListBlocks(lst core.ListID) ([]core.BlockID, error) {
	if err := t.check(); err != nil {
		return nil, err
	}
	if err := t.acquire(listRes(lst), false); err != nil {
		return nil, err
	}
	return t.mgr.d.ListBlocks(t.aru, lst)
}

// Commit ends the ARU (atomicity) and releases all locks; with durable
// set it also flushes (durability). Strict two-phase locking plus
// commit-time ARU serialization yields serializable histories.
func (t *Txn) Commit(durable bool) error {
	if err := t.check(); err != nil {
		return err
	}
	t.done = true
	var err error
	if durable {
		err = t.mgr.d.CommitDurable(t.aru)
	} else {
		err = t.mgr.d.EndARU(t.aru)
	}
	t.release()
	return err
}

// Rollback aborts the ARU and releases all locks. Identifiers the
// transaction allocated remain allocated until the consistency sweep,
// exactly as for a crashed ARU.
func (t *Txn) Rollback() error {
	if t.done {
		return nil
	}
	t.done = true
	err := t.mgr.d.AbortARU(t.aru)
	t.release()
	return err
}

// Run executes fn inside a transaction, retrying wait-die aborts until
// fn either succeeds (then commits) or fails (then rolls back). fn must
// be idempotent across retries.
func (m *Manager) Run(durable bool, fn func(t *Txn) error) error {
	for {
		t, err := m.Begin()
		if err != nil {
			return err
		}
		err = fn(t)
		if err == nil {
			err = t.Commit(durable)
		}
		if err == nil {
			return nil
		}
		_ = t.Rollback()
		if errors.Is(err, ErrAborted) {
			continue // wait-die victim: retry
		}
		return err
	}
}
