package workload

import "math/rand"

// MixedKind enumerates the operations of a mixed ARU workload script.
type MixedKind uint8

const (
	// MixedBegin opens recovery unit Unit.
	MixedBegin MixedKind = iota
	// MixedNewList creates a list inside unit Unit.
	MixedNewList
	// MixedNewBlock allocates a block on list Arg (index into the
	// unit's lists, modulo their count) inside unit Unit and writes
	// its initial payload.
	MixedNewBlock
	// MixedRewrite overwrites live block Arg (index into the unit's
	// live blocks, modulo their count) of unit Unit.
	MixedRewrite
	// MixedDelete deletes live block Arg of unit Unit.
	MixedDelete
	// MixedEnd commits unit Unit.
	MixedEnd
	// MixedAbort aborts unit Unit.
	MixedAbort
	// MixedPoolWrite overwrites pool block Arg (modulo the pool size)
	// with its next generation, outside any unit — a simple operation
	// in the paper's sense.
	MixedPoolWrite
	// MixedFlush makes everything committed so far durable.
	MixedFlush
	// MixedCheckpoint takes a table checkpoint. Only generated while
	// no unit is open (the engine rejects it otherwise).
	MixedCheckpoint
	// MixedConcFlush issues Arg concurrent Flush calls (from Arg
	// goroutines, all at once) and waits for every one — a
	// group-commit phase: the engine may coalesce them into fewer
	// device syncs. Generated only when MixedParams.ConcFlushers > 0.
	MixedConcFlush
)

// MixedOp is one step of a mixed workload script. Unit is the
// script-local unit index (-1 for global operations); Arg selects a
// list, block or pool slot as documented per kind.
type MixedOp struct {
	Kind MixedKind
	Unit int
	Arg  int
}

// MixedParams sizes a mixed workload. Zero fields select defaults.
type MixedParams struct {
	// Units is the total number of recovery units the script runs
	// (default 48).
	Units int
	// MaxOpen bounds how many units are open concurrently (default 3).
	MaxOpen int
	// PoolBlocks is the number of pre-created simple-write pool blocks
	// the script assumes (default 6).
	PoolBlocks int
	// OpsPerUnit is the approximate number of operations inside each
	// unit before it becomes eligible to close (default 6).
	OpsPerUnit int
	// AbortFrac in percent of units that abort instead of committing
	// (default 20).
	AbortFrac int
	// ConcFlushers, when positive, makes the script include
	// MixedConcFlush phases of this many concurrent committers
	// (default 0: no concurrent phases, scripts are fully sequential).
	ConcFlushers int
}

func (p MixedParams) withDefaults() MixedParams {
	if p.Units == 0 {
		p.Units = 48
	}
	if p.MaxOpen == 0 {
		p.MaxOpen = 3
	}
	if p.PoolBlocks == 0 {
		p.PoolBlocks = 6
	}
	if p.OpsPerUnit == 0 {
		p.OpsPerUnit = 6
	}
	if p.AbortFrac == 0 {
		p.AbortFrac = 20
	}
	return p
}

// mixedUnit is the generator's abstract view of one open unit: it only
// tracks counts, which is all an interpreter needs to agree on Arg
// selection (Arg indexes the interpreter's own list/live-block slices).
type mixedUnit struct {
	idx   int
	lists int
	live  int
	ops   int
}

// MixedScript generates a deterministic interleaved workload of
// recovery units (with aborts), list and block operations inside them,
// simple pool writes, flushes and checkpoints. The same seed and
// params always yield the same script, and every emitted op is valid
// when interpreted in order (a unit is only ended once, blocks are
// only rewritten while one is live, checkpoints only appear while no
// unit is open).
func MixedScript(seed int64, p MixedParams) []MixedOp {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	var (
		script  []MixedOp
		open    []*mixedUnit
		started int
	)
	emit := func(k MixedKind, unit, arg int) {
		script = append(script, MixedOp{Kind: k, Unit: unit, Arg: arg})
	}
	closeUnit := func(u *mixedUnit, slot int) {
		if rng.Intn(100) < p.AbortFrac {
			emit(MixedAbort, u.idx, 0)
		} else {
			emit(MixedEnd, u.idx, 0)
		}
		open = append(open[:slot], open[slot+1:]...)
	}
	for started < p.Units || len(open) > 0 {
		// Weighted choice over currently valid actions.
		type action struct {
			w  int
			do func()
		}
		var acts []action
		if started < p.Units && len(open) < p.MaxOpen {
			acts = append(acts, action{3, func() {
				u := &mixedUnit{idx: started}
				emit(MixedBegin, u.idx, 0)
				open = append(open, u)
				started++
			}})
		}
		for slot := range open {
			u, slot := open[slot], slot
			if u.lists < 2 {
				acts = append(acts, action{1, func() {
					emit(MixedNewList, u.idx, 0)
					u.lists++
					u.ops++
				}})
			}
			if u.lists > 0 {
				acts = append(acts, action{4, func() {
					emit(MixedNewBlock, u.idx, rng.Intn(u.lists))
					u.live++
					u.ops++
				}})
			}
			if u.live > 0 {
				acts = append(acts, action{3, func() {
					emit(MixedRewrite, u.idx, rng.Intn(u.live))
					u.ops++
				}})
				acts = append(acts, action{1, func() {
					emit(MixedDelete, u.idx, rng.Intn(u.live))
					u.live--
					u.ops++
				}})
			}
			w := 1
			if u.ops >= p.OpsPerUnit {
				w = 6
			}
			acts = append(acts, action{w, func() { closeUnit(u, slot) }})
		}
		acts = append(acts, action{2, func() {
			emit(MixedPoolWrite, -1, rng.Intn(p.PoolBlocks))
		}})
		acts = append(acts, action{2, func() { emit(MixedFlush, -1, 0) }})
		if p.ConcFlushers > 0 {
			acts = append(acts, action{2, func() {
				emit(MixedConcFlush, -1, p.ConcFlushers)
			}})
		}
		if len(open) == 0 {
			acts = append(acts, action{1, func() { emit(MixedCheckpoint, -1, 0) }})
		}
		total := 0
		for _, a := range acts {
			total += a.w
		}
		pick := rng.Intn(total)
		for _, a := range acts {
			if pick < a.w {
				a.do()
				break
			}
			pick -= a.w
		}
	}
	emit(MixedFlush, -1, 0)
	return script
}
