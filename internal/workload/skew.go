package workload

import "math/rand"

// Skew describes a hot-key workload for the sharded disk: Ops recovery
// units, each updating one of Keys keys, with keys drawn from a Zipf
// distribution. On a sharded disk the keys map to lists, the lists
// route to shards, and the skew concentrates commit traffic on the hot
// shards — the interesting regime for per-shard group commit.
type Skew struct {
	Keys int     // distinct keys (each key is one list with one block)
	Ops  int     // recovery units to commit
	S    float64 // Zipf s parameter (>1; larger = more skewed)
	V    float64 // Zipf v parameter (≥1; larger = flatter head)
	Seed int64
}

// DefaultSkew is the standard shard-skew configuration: 64 keys,
// s=1.2 — a hot head (the top key draws roughly a fifth of the ops)
// with a long tail touching every shard.
func DefaultSkew() Skew {
	return Skew{Keys: 64, Ops: 2000, S: 1.2, V: 4, Seed: 1996}
}

// Scale returns a copy with Ops scaled by 1/f (at least one op per
// key), for quick runs.
func (z Skew) Scale(f int) Skew {
	if f > 1 {
		z.Ops = max(z.Keys, z.Ops/f)
	}
	return z
}

// Schedule returns the key index of each op, deterministically for the
// seed. The sequence is the whole workload: callers partition it among
// committers however they like without changing which keys get hot.
func (z Skew) Schedule() []int {
	rng := rand.New(rand.NewSource(z.Seed))
	s, v := z.S, z.V
	if s <= 1 {
		s = 1.2
	}
	if v < 1 {
		v = 1
	}
	zipf := rand.NewZipf(rng, s, v, uint64(z.Keys-1))
	sched := make([]int, z.Ops)
	for i := range sched {
		sched[i] = int(zipf.Uint64())
	}
	return sched
}

// KeyCounts returns how many ops the schedule assigns to each key —
// the expected histogram against which per-shard counters are judged.
func (z Skew) KeyCounts(sched []int) []int {
	counts := make([]int, z.Keys)
	for _, k := range sched {
		counts[k]++
	}
	return counts
}
