package workload

import "testing"

// TestMixedScriptDeterministic: the same seed and params must always
// produce the identical script — crash-state artifacts replay by
// re-running the generator.
func TestMixedScriptDeterministic(t *testing.T) {
	a := MixedScript(7, MixedParams{})
	b := MixedScript(7, MixedParams{})
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	if c := MixedScript(8, MixedParams{}); len(c) == len(a) {
		same := true
		for i := range c {
			if c[i] != a[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical scripts")
		}
	}
}

// TestMixedScriptValid replays scripts against an abstract model and
// checks the structural guarantees the executor relies on: units are
// opened before use and closed exactly once, every unit closes by the
// end, per-unit ops only target open units, checkpoints only happen
// with no unit open, and the script ends with a flush.
func TestMixedScriptValid(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		p := MixedParams{Units: 30}
		ops := MixedScript(seed, p)
		open := map[int]bool{}
		closed := map[int]bool{}
		commits, aborts := 0, 0
		for i, op := range ops {
			switch op.Kind {
			case MixedBegin:
				if open[op.Unit] || closed[op.Unit] {
					t.Fatalf("seed %d op %d: unit %d begun twice", seed, i, op.Unit)
				}
				open[op.Unit] = true
			case MixedNewList, MixedNewBlock, MixedRewrite, MixedDelete:
				if !open[op.Unit] {
					t.Fatalf("seed %d op %d: %v targets unopened unit %d", seed, i, op.Kind, op.Unit)
				}
			case MixedEnd, MixedAbort:
				if !open[op.Unit] {
					t.Fatalf("seed %d op %d: close of unopened unit %d", seed, i, op.Unit)
				}
				delete(open, op.Unit)
				closed[op.Unit] = true
				if op.Kind == MixedEnd {
					commits++
				} else {
					aborts++
				}
			case MixedCheckpoint:
				if len(open) != 0 {
					t.Fatalf("seed %d op %d: checkpoint with %d units open", seed, i, len(open))
				}
			case MixedPoolWrite, MixedFlush:
			default:
				t.Fatalf("seed %d op %d: unknown kind %v", seed, i, op.Kind)
			}
		}
		if len(open) != 0 {
			t.Fatalf("seed %d: %d units never closed", seed, len(open))
		}
		if commits+aborts != p.Units {
			t.Fatalf("seed %d: %d commits + %d aborts, want %d units", seed, commits, aborts, p.Units)
		}
		if commits == 0 || aborts == 0 {
			t.Fatalf("seed %d: want a mix of commits (%d) and aborts (%d)", seed, commits, aborts)
		}
		if last := ops[len(ops)-1]; last.Kind != MixedFlush {
			t.Fatalf("seed %d: script ends with %+v, want MixedFlush", seed, last)
		}
	}
}
