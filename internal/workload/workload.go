// Package workload generates the deterministic workloads of the
// paper's evaluation (§5.2): the small-file population (10,000 1-KByte
// and 1,000 10-KByte files), the large-file phase sequence
// (write1/read1/write2/read2/read3 over a 78.125 MB file), the empty
// ARU begin/end stress, and randomized operation streams for property
// tests. All generators are seeded and reproducible.
package workload

import (
	"fmt"
	"math/rand"
)

// SmallFiles describes a small-file benchmark population. Files are
// spread over subdirectories so directory scans stay linear in the
// per-directory population, as in Minix.
type SmallFiles struct {
	NumFiles int
	FileSize int
	Dirs     int // number of subdirectories (default ~sqrt(NumFiles))
}

// PaperSmall1K is the 10,000 × 1 KB population from Figure 5.
func PaperSmall1K() SmallFiles { return SmallFiles{NumFiles: 10000, FileSize: 1024, Dirs: 100} }

// PaperSmall10K is the 1,000 × 10 KB population from Figure 5.
func PaperSmall10K() SmallFiles { return SmallFiles{NumFiles: 1000, FileSize: 10240, Dirs: 32} }

// Scale returns a copy with NumFiles scaled by 1/f (at least 1 file),
// for quick runs.
func (s SmallFiles) Scale(f int) SmallFiles {
	if f <= 1 {
		return s
	}
	s.NumFiles = max(1, s.NumFiles/f)
	s.Dirs = max(1, s.Dirs/f)
	return s
}

// DirName returns the path of subdirectory d.
func (s SmallFiles) DirName(d int) string { return fmt.Sprintf("/d%03d", d) }

// FileName returns the path of file i.
func (s SmallFiles) FileName(i int) string {
	dirs := s.Dirs
	if dirs <= 0 {
		dirs = 1
	}
	return fmt.Sprintf("%s/f%06d", s.DirName(i%dirs), i)
}

// NumDirs returns the effective directory count.
func (s SmallFiles) NumDirs() int {
	if s.Dirs <= 0 {
		return 1
	}
	return s.Dirs
}

// Payload fills buf with the deterministic contents of file i.
func (s SmallFiles) Payload(i int, buf []byte) {
	pattern := byte(i*131 + 17)
	for j := range buf {
		buf[j] = pattern + byte(j)
	}
}

// LargeFile describes the large-file benchmark: one file of TotalBytes
// accessed in IOSize units.
type LargeFile struct {
	TotalBytes int64
	IOSize     int
	Seed       int64
}

// PaperLarge is the 78.125 MB file from Figure 6, accessed in 4 KB
// units.
func PaperLarge() LargeFile {
	return LargeFile{TotalBytes: 78125 * 1024, IOSize: 4096, Seed: 1996}
}

// Scale returns a copy with TotalBytes scaled by 1/f.
func (l LargeFile) Scale(f int) LargeFile {
	if f > 1 {
		l.TotalBytes /= int64(f)
		if l.TotalBytes < int64(l.IOSize) {
			l.TotalBytes = int64(l.IOSize)
		}
	}
	return l
}

// NumIOs returns the number of IOSize units covering the file.
func (l LargeFile) NumIOs() int {
	return int((l.TotalBytes + int64(l.IOSize) - 1) / int64(l.IOSize))
}

// WriteOrder returns the deterministic permutation used by the write2
// phase ("the file is then written in random order").
func (l LargeFile) WriteOrder() []int {
	rng := rand.New(rand.NewSource(l.Seed))
	return rng.Perm(l.NumIOs())
}

// ReadOrder returns the deterministic permutation used by the read2
// phase ("read in random order"). It is independent of WriteOrder: a
// log-structured disk lays write2's blocks out in write order, so
// re-using the same permutation would make the "random" reads
// physically sequential.
func (l LargeFile) ReadOrder() []int {
	rng := rand.New(rand.NewSource(l.Seed + 1))
	return rng.Perm(l.NumIOs())
}

// Payload fills buf with the contents of unit i at generation gen
// (write1 uses gen 0, write2 gen 1, so the phases are distinguishable).
func (l LargeFile) Payload(i, gen int, buf []byte) {
	pattern := byte(i*37+gen*101) | 1
	for j := range buf {
		buf[j] = pattern ^ byte(j)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
