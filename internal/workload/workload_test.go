package workload

import (
	"strings"
	"testing"
)

func TestPaperPopulations(t *testing.T) {
	s1 := PaperSmall1K()
	if s1.NumFiles != 10000 || s1.FileSize != 1024 {
		t.Fatalf("PaperSmall1K = %+v", s1)
	}
	s10 := PaperSmall10K()
	if s10.NumFiles != 1000 || s10.FileSize != 10240 {
		t.Fatalf("PaperSmall10K = %+v", s10)
	}
	lf := PaperLarge()
	if lf.TotalBytes != 78125*1024 { // 78.125 MB
		t.Fatalf("PaperLarge = %+v", lf)
	}
	if lf.IOSize != 4096 {
		t.Fatalf("PaperLarge I/O size = %d", lf.IOSize)
	}
}

func TestSmallFilesNaming(t *testing.T) {
	s := PaperSmall1K()
	seen := make(map[string]bool, s.NumFiles)
	for i := 0; i < s.NumFiles; i++ {
		name := s.FileName(i)
		if seen[name] {
			t.Fatalf("duplicate file name %q", name)
		}
		seen[name] = true
		if !strings.HasPrefix(name, s.DirName(i%s.NumDirs())+"/") {
			t.Fatalf("file %d not in its directory: %q", i, name)
		}
	}
}

func TestSmallFilesScale(t *testing.T) {
	s := PaperSmall1K().Scale(10)
	if s.NumFiles != 1000 || s.Dirs != 10 {
		t.Fatalf("scaled = %+v", s)
	}
	if got := PaperSmall10K().Scale(10000); got.NumFiles < 1 || got.Dirs < 1 {
		t.Fatalf("overscaled to zero: %+v", got)
	}
	if got := PaperSmall1K().Scale(1); got != PaperSmall1K() {
		t.Fatalf("Scale(1) changed the spec")
	}
}

func TestPayloadDeterministicAndDistinct(t *testing.T) {
	s := PaperSmall1K()
	a1 := make([]byte, 64)
	a2 := make([]byte, 64)
	s.Payload(7, a1)
	s.Payload(7, a2)
	if string(a1) != string(a2) {
		t.Fatal("payload not deterministic")
	}
	s.Payload(8, a2)
	if string(a1) == string(a2) {
		t.Fatal("adjacent files share payloads")
	}
}

func TestLargeFileOrders(t *testing.T) {
	lf := PaperLarge().Scale(100)
	n := lf.NumIOs()
	checkPerm := func(p []int, name string) {
		if len(p) != n {
			t.Fatalf("%s has %d elements, want %d", name, len(p), n)
		}
		seen := make([]bool, n)
		for _, x := range p {
			if x < 0 || x >= n || seen[x] {
				t.Fatalf("%s is not a permutation", name)
			}
			seen[x] = true
		}
	}
	w := lf.WriteOrder()
	r := lf.ReadOrder()
	checkPerm(w, "WriteOrder")
	checkPerm(r, "ReadOrder")
	// The two orders must be genuinely different, or "random reads"
	// would be physically sequential on a log-structured disk.
	same := 0
	for i := range w {
		if w[i] == r[i] {
			same++
		}
	}
	if same > n/4 {
		t.Fatalf("write and read orders nearly identical (%d/%d fixed points)", same, n)
	}
	// And deterministic.
	w2 := lf.WriteOrder()
	for i := range w {
		if w[i] != w2[i] {
			t.Fatal("WriteOrder not deterministic")
		}
	}
}

func TestLargeFileScaleAndPayload(t *testing.T) {
	lf := PaperLarge().Scale(1000000)
	if lf.TotalBytes < int64(lf.IOSize) {
		t.Fatalf("overscaled below one I/O: %+v", lf)
	}
	a := make([]byte, 32)
	b := make([]byte, 32)
	PaperLarge().Payload(3, 0, a)
	PaperLarge().Payload(3, 1, b)
	if string(a) == string(b) {
		t.Fatal("write1 and write2 payloads indistinguishable")
	}
}
