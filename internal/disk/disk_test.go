package disk

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestReadWriteRoundTrip(t *testing.T) {
	d := NewMem(1 << 20)
	w := bytes.Repeat([]byte{0xab}, 4096)
	if err := d.WriteAt(w, 8192); err != nil {
		t.Fatal(err)
	}
	r := make([]byte, 4096)
	if err := d.ReadAt(r, 8192); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r, w) {
		t.Fatal("round trip mismatch")
	}
	// Unwritten areas read as zero.
	if err := d.ReadAt(r, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r, make([]byte, 4096)) {
		t.Fatal("fresh area not zero")
	}
}

func TestAlignmentAndRange(t *testing.T) {
	d := NewMem(1 << 16)
	buf := make([]byte, SectorSize)
	if err := d.ReadAt(buf, 7); !errors.Is(err, ErrUnaligned) {
		t.Errorf("unaligned offset: %v", err)
	}
	if err := d.ReadAt(buf[:100], 0); !errors.Is(err, ErrUnaligned) {
		t.Errorf("unaligned length: %v", err)
	}
	if err := d.ReadAt(buf, 1<<16); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("past end: %v", err)
	}
	if err := d.WriteAt(buf, -512); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("negative offset: %v", err)
	}
}

func TestStatsAndClock(t *testing.T) {
	d := NewSim(1<<22, HPC3010())
	buf := make([]byte, 4096)
	for i := 0; i < 4; i++ {
		if err := d.WriteAt(buf, int64(i)*4096); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Writes != 4 || st.Reads != 1 {
		t.Fatalf("counters: %+v", st)
	}
	if st.BytesWritten != 4*4096 || st.BytesRead != 4096 {
		t.Fatalf("bytes: %+v", st)
	}
	if st.Elapsed <= 0 {
		t.Fatalf("virtual clock did not advance")
	}
	d.ResetStats()
	if d.Stats() != (Stats{}) {
		t.Fatalf("ResetStats did not zero")
	}
}

// TestServiceTimeModel checks the qualitative properties the benchmarks
// rely on: sequential access beats near-gap access beats random access,
// and the model is deterministic.
func TestServiceTimeModel(t *testing.T) {
	g := HPC3010()
	cap := int64(400 << 20)
	seq := g.serviceTime(8192, 8192, 4096, cap)         // head already there
	near := g.serviceTime(8192, 8192+8*1024, 4096, cap) // small forward gap
	back := g.serviceTime(8192, 0, 4096, cap)           // any backward move seeks
	far := g.serviceTime(0, cap/2, 4096, cap)           // long seek
	if !(seq < near && near < back && back < far) {
		t.Fatalf("model ordering violated: seq=%v near=%v back=%v far=%v", seq, near, back, far)
	}
	if again := g.serviceTime(0, cap/2, 4096, cap); again != far {
		t.Fatalf("model not deterministic")
	}
	// A full 0.5 MB segment write should approach the media rate.
	segTime := g.serviceTime(0, cap/2, 512*1024, cap)
	media := time.Duration(512 * 1024 * int64(time.Second) / g.TransferRate)
	if segTime < media || segTime > media+30*time.Millisecond {
		t.Fatalf("segment write %v not dominated by transfer %v", segTime, media)
	}
}

func TestCrashPlan(t *testing.T) {
	d := NewMem(1 << 20)
	d.SetFaultPlan(FaultPlan{CrashAfterWrites: 2, TornSectors: 1})
	buf := bytes.Repeat([]byte{0x11}, 2048)
	if err := d.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteAt(buf, 4096); err != nil {
		t.Fatal(err)
	}
	// Third write is fatal: only one sector lands.
	fatal := bytes.Repeat([]byte{0x22}, 2048)
	if err := d.WriteAt(fatal, 8192); !errors.Is(err, ErrCrashed) {
		t.Fatalf("fatal write: %v", err)
	}
	if !d.Crashed() {
		t.Fatal("not crashed")
	}
	if err := d.ReadAt(buf, 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("I/O after crash: %v", err)
	}
	if err := d.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("sync after crash: %v", err)
	}
	// The image shows the torn write: first sector only.
	img := d.Image()
	if img[8192] != 0x22 || img[8192+SectorSize-1] != 0x22 {
		t.Fatal("first sector of torn write missing")
	}
	if img[8192+SectorSize] != 0 {
		t.Fatal("torn write wrote beyond TornSectors")
	}
	// Reopen yields a working device with the same contents.
	d2 := d.Reopen(img)
	if d2.Crashed() {
		t.Fatal("reopened device is crashed")
	}
	got := make([]byte, 2048)
	if err := d2.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x11 {
		t.Fatal("contents lost across reopen")
	}
}

func TestTornSectorsVariants(t *testing.T) {
	// TornSectors < 0 drops the fatal write entirely.
	d := NewMem(1 << 20)
	d.SetFaultPlan(FaultPlan{CrashAfterWrites: 0, TornSectors: -1})
	d.SetFaultPlan(FaultPlan{CrashAfterWrites: 1, TornSectors: -1})
	_ = d.WriteAt(make([]byte, 512), 0)
	if err := d.WriteAt(bytes.Repeat([]byte{0xff}, 512), 512); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want crash, got %v", err)
	}
	if d.Image()[512] != 0 {
		t.Fatal("dropped write reached the medium")
	}
	// TornSectors == 0 applies the fatal write fully.
	d = NewMem(1 << 20)
	d.SetFaultPlan(FaultPlan{CrashAfterWrites: 1, TornSectors: 0})
	_ = d.WriteAt(make([]byte, 512), 0)
	if err := d.WriteAt(bytes.Repeat([]byte{0xee}, 1024), 1024); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want crash, got %v", err)
	}
	img := d.Image()
	if img[1024] != 0xee || img[2047] != 0xee {
		t.Fatal("full fatal write should have landed")
	}
}

func TestWriteErrorInjection(t *testing.T) {
	d := NewMem(1 << 20)
	d.SetFaultPlan(FaultPlan{WriteErrorEvery: 3})
	buf := make([]byte, 512)
	var failures int
	for i := 0; i < 9; i++ {
		if err := d.WriteAt(buf, int64(i)*512); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("unexpected error: %v", err)
			}
			failures++
		}
	}
	if failures != 3 {
		t.Fatalf("got %d injected failures, want 3", failures)
	}
	if d.Crashed() {
		t.Fatal("transient errors must not crash the device")
	}
}

// TestQuickContentFidelity: random aligned writes then reads always see
// the most recent data.
func TestQuickContentFidelity(t *testing.T) {
	f := func(offsets []uint16, pattern byte) bool {
		d := NewMem(1 << 22)
		last := make(map[int64]byte)
		buf := make([]byte, 512)
		for i, o := range offsets {
			off := (int64(o) % (1 << 12)) * 512
			p := pattern + byte(i)
			for j := range buf {
				buf[j] = p
			}
			if err := d.WriteAt(buf, off); err != nil {
				return false
			}
			last[off] = p
		}
		for off, p := range last {
			if err := d.ReadAt(buf, off); err != nil {
				return false
			}
			for _, x := range buf {
				if x != p {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestManualCrash(t *testing.T) {
	d := NewMem(1 << 16)
	d.Crash()
	if err := d.WriteAt(make([]byte, 512), 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write after manual crash: %v", err)
	}
}
