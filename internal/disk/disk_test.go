package disk

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestReadWriteRoundTrip(t *testing.T) {
	d := NewMem(1 << 20)
	w := bytes.Repeat([]byte{0xab}, 4096)
	if err := d.WriteAt(w, 8192); err != nil {
		t.Fatal(err)
	}
	r := make([]byte, 4096)
	if err := d.ReadAt(r, 8192); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r, w) {
		t.Fatal("round trip mismatch")
	}
	// Unwritten areas read as zero.
	if err := d.ReadAt(r, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r, make([]byte, 4096)) {
		t.Fatal("fresh area not zero")
	}
}

func TestAlignmentAndRange(t *testing.T) {
	d := NewMem(1 << 16)
	buf := make([]byte, SectorSize)
	if err := d.ReadAt(buf, 7); !errors.Is(err, ErrUnaligned) {
		t.Errorf("unaligned offset: %v", err)
	}
	if err := d.ReadAt(buf[:100], 0); !errors.Is(err, ErrUnaligned) {
		t.Errorf("unaligned length: %v", err)
	}
	if err := d.ReadAt(buf, 1<<16); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("past end: %v", err)
	}
	if err := d.WriteAt(buf, -512); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("negative offset: %v", err)
	}
}

func TestStatsAndClock(t *testing.T) {
	d := NewSim(1<<22, HPC3010())
	buf := make([]byte, 4096)
	for i := 0; i < 4; i++ {
		if err := d.WriteAt(buf, int64(i)*4096); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Writes != 4 || st.Reads != 1 {
		t.Fatalf("counters: %+v", st)
	}
	if st.BytesWritten != 4*4096 || st.BytesRead != 4096 {
		t.Fatalf("bytes: %+v", st)
	}
	if st.Elapsed <= 0 {
		t.Fatalf("virtual clock did not advance")
	}
	d.ResetStats()
	if d.Stats() != (Stats{}) {
		t.Fatalf("ResetStats did not zero")
	}
}

// TestServiceTimeModel checks the qualitative properties the benchmarks
// rely on: sequential access beats near-gap access beats random access,
// and the model is deterministic.
func TestServiceTimeModel(t *testing.T) {
	g := HPC3010()
	cap := int64(400 << 20)
	seq := g.serviceTime(8192, 8192, 4096, cap)         // head already there
	near := g.serviceTime(8192, 8192+8*1024, 4096, cap) // small forward gap
	back := g.serviceTime(8192, 0, 4096, cap)           // any backward move seeks
	far := g.serviceTime(0, cap/2, 4096, cap)           // long seek
	if !(seq < near && near < back && back < far) {
		t.Fatalf("model ordering violated: seq=%v near=%v back=%v far=%v", seq, near, back, far)
	}
	if again := g.serviceTime(0, cap/2, 4096, cap); again != far {
		t.Fatalf("model not deterministic")
	}
	// A full 0.5 MB segment write should approach the media rate.
	segTime := g.serviceTime(0, cap/2, 512*1024, cap)
	media := time.Duration(512 * 1024 * int64(time.Second) / g.TransferRate)
	if segTime < media || segTime > media+30*time.Millisecond {
		t.Fatalf("segment write %v not dominated by transfer %v", segTime, media)
	}
}

func TestCrashPlan(t *testing.T) {
	d := NewMem(1 << 20)
	d.SetFaultPlan(FaultPlan{CrashAfterWrites: 2, TornSectors: 1})
	buf := bytes.Repeat([]byte{0x11}, 2048)
	if err := d.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteAt(buf, 4096); err != nil {
		t.Fatal(err)
	}
	// Third write is fatal: only one sector lands.
	fatal := bytes.Repeat([]byte{0x22}, 2048)
	if err := d.WriteAt(fatal, 8192); !errors.Is(err, ErrCrashed) {
		t.Fatalf("fatal write: %v", err)
	}
	if !d.Crashed() {
		t.Fatal("not crashed")
	}
	if err := d.ReadAt(buf, 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("I/O after crash: %v", err)
	}
	if err := d.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("sync after crash: %v", err)
	}
	// The image shows the torn write: first sector only.
	img := d.Image()
	if img[8192] != 0x22 || img[8192+SectorSize-1] != 0x22 {
		t.Fatal("first sector of torn write missing")
	}
	if img[8192+SectorSize] != 0 {
		t.Fatal("torn write wrote beyond TornSectors")
	}
	// Reopen yields a working device with the same contents.
	d2 := d.Reopen(img)
	if d2.Crashed() {
		t.Fatal("reopened device is crashed")
	}
	got := make([]byte, 2048)
	if err := d2.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x11 {
		t.Fatal("contents lost across reopen")
	}
}

func TestTornSectorsVariants(t *testing.T) {
	// TornSectors < 0 drops the fatal write entirely.
	d := NewMem(1 << 20)
	d.SetFaultPlan(FaultPlan{CrashAfterWrites: 0, TornSectors: -1})
	d.SetFaultPlan(FaultPlan{CrashAfterWrites: 1, TornSectors: -1})
	_ = d.WriteAt(make([]byte, 512), 0)
	if err := d.WriteAt(bytes.Repeat([]byte{0xff}, 512), 512); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want crash, got %v", err)
	}
	if d.Image()[512] != 0 {
		t.Fatal("dropped write reached the medium")
	}
	// TornSectors == 0 applies the fatal write fully.
	d = NewMem(1 << 20)
	d.SetFaultPlan(FaultPlan{CrashAfterWrites: 1, TornSectors: 0})
	_ = d.WriteAt(make([]byte, 512), 0)
	if err := d.WriteAt(bytes.Repeat([]byte{0xee}, 1024), 1024); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want crash, got %v", err)
	}
	img := d.Image()
	if img[1024] != 0xee || img[2047] != 0xee {
		t.Fatal("full fatal write should have landed")
	}
}

func TestWriteErrorInjection(t *testing.T) {
	d := NewMem(1 << 20)
	d.SetFaultPlan(FaultPlan{WriteErrorEvery: 3})
	buf := make([]byte, 512)
	var failures int
	for i := 0; i < 9; i++ {
		if err := d.WriteAt(buf, int64(i)*512); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("unexpected error: %v", err)
			}
			failures++
		}
	}
	if failures != 3 {
		t.Fatalf("got %d injected failures, want 3", failures)
	}
	if d.Crashed() {
		t.Fatal("transient errors must not crash the device")
	}
}

// TestQuickContentFidelity: random aligned writes then reads always see
// the most recent data.
func TestQuickContentFidelity(t *testing.T) {
	f := func(offsets []uint16, pattern byte) bool {
		d := NewMem(1 << 22)
		last := make(map[int64]byte)
		buf := make([]byte, 512)
		for i, o := range offsets {
			off := (int64(o) % (1 << 12)) * 512
			p := pattern + byte(i)
			for j := range buf {
				buf[j] = p
			}
			if err := d.WriteAt(buf, off); err != nil {
				return false
			}
			last[off] = p
		}
		for off, p := range last {
			if err := d.ReadAt(buf, off); err != nil {
				return false
			}
			for _, x := range buf {
				if x != p {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestManualCrash(t *testing.T) {
	d := NewMem(1 << 16)
	d.Crash()
	if err := d.WriteAt(make([]byte, 512), 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write after manual crash: %v", err)
	}
}

// TestTornHistoryDeterministic: with TornHistory set, a crash rolls
// un-synced writes back to seeded torn prefixes — the same seed always
// yields the same image, a different seed a (generally) different one,
// and writes settled by Sync never tear.
func TestTornHistoryDeterministic(t *testing.T) {
	run := func(seed int64) []byte {
		d := NewMem(1 << 20)
		d.SetFaultPlan(FaultPlan{TornHistory: 8, TornSeed: seed})
		// Durable prelude: settled by Sync, must survive any crash.
		if err := d.WriteAt(bytes.Repeat([]byte{0xAA}, 1024), 0); err != nil {
			t.Fatal(err)
		}
		if err := d.Sync(); err != nil {
			t.Fatal(err)
		}
		// In-flight window: eligible to tear.
		for i := 0; i < 6; i++ {
			buf := bytes.Repeat([]byte{byte(0x10 + i)}, 2048)
			if err := d.WriteAt(buf, int64(4096+i*4096)); err != nil {
				t.Fatal(err)
			}
		}
		d.Crash()
		return d.Image()
	}
	a, b, c := run(7), run(7), run(8)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different torn images")
	}
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical torn images (suspicious)")
	}
	// Synced region intact in every variant.
	for _, img := range [][]byte{a, c} {
		for i := 0; i < 1024; i++ {
			if img[i] != 0xAA {
				t.Fatalf("synced write torn at byte %d", i)
			}
		}
	}
	// Every in-flight write is a clean sector prefix of either the old
	// (zero) or new contents — no mid-sector tears, no foreign bytes.
	for i := 0; i < 6; i++ {
		off := 4096 + i*4096
		want := byte(0x10 + i)
		for s := 0; s < 4; s++ {
			sec := a[off+s*SectorSize : off+(s+1)*SectorSize]
			if sec[0] != 0 && sec[0] != want {
				t.Fatalf("write %d sector %d has foreign byte %#x", i, s, sec[0])
			}
			for _, bb := range sec {
				if bb != sec[0] {
					t.Fatalf("write %d sector %d torn mid-sector", i, s)
				}
			}
		}
	}
}

// TestTornHistoryWithFatalWrite: the CrashAfterWrites path composes
// with history tearing — the fatal write obeys TornSectors while the
// preceding un-synced writes tear per the seed.
func TestTornHistoryWithFatalWrite(t *testing.T) {
	d := NewMem(1 << 20)
	d.SetFaultPlan(FaultPlan{
		CrashAfterWrites: 2, TornSectors: 1,
		TornHistory: 4, TornSeed: 42,
	})
	if err := d.WriteAt(bytes.Repeat([]byte{0x01}, 1024), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteAt(bytes.Repeat([]byte{0x02}, 1024), 4096); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteAt(bytes.Repeat([]byte{0x03}, 1024), 8192); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want crash, got %v", err)
	}
	img := d.Image()
	// Fatal write: exactly one sector per TornSectors.
	if img[8192] != 0x03 || img[8192+SectorSize] != 0 {
		t.Fatal("fatal write did not honor TornSectors")
	}
	// History writes: whole-sector prefixes of old or new contents.
	for _, off := range []int{0, 4096} {
		for s := 0; s < 2; s++ {
			sec := img[off+s*SectorSize : off+(s+1)*SectorSize]
			for _, bb := range sec {
				if bb != sec[0] {
					t.Fatalf("history write at %d sector %d torn mid-sector", off, s)
				}
			}
		}
	}
	// Replaying with the same plan on the same ops is reproducible.
	d2 := NewMem(1 << 20)
	d2.SetFaultPlan(FaultPlan{
		CrashAfterWrites: 2, TornSectors: 1,
		TornHistory: 4, TornSeed: 42,
	})
	_ = d2.WriteAt(bytes.Repeat([]byte{0x01}, 1024), 0)
	_ = d2.WriteAt(bytes.Repeat([]byte{0x02}, 1024), 4096)
	_ = d2.WriteAt(bytes.Repeat([]byte{0x03}, 1024), 8192)
	if !bytes.Equal(img, d2.Image()) {
		t.Fatal("torn-history crash not reproducible")
	}
}

// TestFromImageAndRecycle: FromImage copies the image (no aliasing) and
// Recycle is a power cycle — fresh uncrashed device, same contents.
func TestFromImageAndRecycle(t *testing.T) {
	img := make([]byte, 4096)
	img[0] = 0x7F
	d := FromImage(img, Geometry{})
	img[0] = 0 // mutating the source must not affect the device
	got := make([]byte, 512)
	if err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x7F {
		t.Fatal("FromImage aliased or lost the source image")
	}
	d.Crash()
	d2 := d.Recycle()
	if d2.Crashed() {
		t.Fatal("recycled device still crashed")
	}
	if err := d2.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x7F {
		t.Fatal("contents lost across Recycle")
	}
}

// TestSyncDelayAndCounter: SetSyncDelay makes each Sync cost real wall
// time and the Syncs counter tracks every one — the two hooks the
// group-commit benchmarks and amortization assertions build on.
func TestSyncDelayAndCounter(t *testing.T) {
	s := NewMem(1 << 16)
	for i := 0; i < 3; i++ {
		if err := s.Sync(); err != nil {
			t.Fatalf("Sync: %v", err)
		}
	}
	if got := s.Stats().Syncs; got != 3 {
		t.Fatalf("Syncs counter: got %d, want 3", got)
	}

	const delay = 20 * time.Millisecond
	s.SetSyncDelay(delay)
	t0 := time.Now()
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync with delay: %v", err)
	}
	if elapsed := time.Since(t0); elapsed < delay {
		t.Errorf("Sync with %v delay returned after %v", delay, elapsed)
	}
	if got := s.Stats().Syncs; got != 4 {
		t.Errorf("Syncs counter after delayed sync: got %d, want 4", got)
	}

	// The delay is wall time only: the virtual service-time clock is
	// untouched by syncs.
	if got := s.Stats().Elapsed; got != 0 {
		t.Errorf("sync delay leaked into the virtual clock: %v", got)
	}

	s.SetSyncDelay(0)
	t0 = time.Now()
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync after clearing delay: %v", err)
	}
	if elapsed := time.Since(t0); elapsed > delay {
		t.Errorf("cleared delay still sleeping: %v", elapsed)
	}
}
