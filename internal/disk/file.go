package disk

import (
	"fmt"
	"os"
	"sync"
)

// File is a Disk backed by a file on the host file system, for tools
// and deployments that want the logical disk to actually persist.
// Unlike Sim it has no service-time model or fault injection; the
// virtual-clock experiments use Sim, the file device carries real data
// (aru-mkimage/aru-fsck images, for example).
type File struct {
	mu   sync.Mutex
	f    *os.File
	size int64
}

var _ Disk = (*File)(nil)

// CreateFile creates (or truncates) path as a device of the given
// capacity, rounded down to whole sectors.
func CreateFile(path string, capacity int64) (*File, error) {
	capacity -= capacity % SectorSize
	if capacity <= 0 {
		return nil, fmt.Errorf("disk: file device needs a positive capacity, got %d", capacity)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("disk: creating %s: %w", path, err)
	}
	if err := f.Truncate(capacity); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("disk: sizing %s: %w", path, err)
	}
	return &File{f: f, size: capacity}, nil
}

// OpenFile opens an existing device file; its size (rounded down to
// whole sectors) is the capacity.
func OpenFile(path string) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("disk: opening %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("disk: stat %s: %w", path, err)
	}
	size := st.Size() - st.Size()%SectorSize
	if size <= 0 {
		_ = f.Close()
		return nil, fmt.Errorf("disk: %s is empty", path)
	}
	return &File{f: f, size: size}, nil
}

func (d *File) check(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > d.size {
		return fmt.Errorf("%w: off=%d len=%d size=%d", ErrOutOfRange, off, len(p), d.size)
	}
	if off%SectorSize != 0 || len(p)%SectorSize != 0 {
		return fmt.Errorf("%w: off=%d len=%d", ErrUnaligned, off, len(p))
	}
	return nil
}

// ReadAt implements Disk.
func (d *File) ReadAt(p []byte, off int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.check(p, off); err != nil {
		return err
	}
	if _, err := d.f.ReadAt(p, off); err != nil {
		return fmt.Errorf("disk: read at %d: %w", off, err)
	}
	return nil
}

// ReadAtShared reads without taking the device mutex. os.File.ReadAt
// is a positioned pread and is safe for concurrent use, so the only
// state consulted is the immutable size.
func (d *File) ReadAtShared(p []byte, off int64) error {
	if err := d.check(p, off); err != nil {
		return err
	}
	if _, err := d.f.ReadAt(p, off); err != nil {
		return fmt.Errorf("disk: read at %d: %w", off, err)
	}
	return nil
}

// WriteAt implements Disk.
func (d *File) WriteAt(p []byte, off int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.check(p, off); err != nil {
		return err
	}
	if _, err := d.f.WriteAt(p, off); err != nil {
		return fmt.Errorf("disk: write at %d: %w", off, err)
	}
	return nil
}

// Sync implements Disk by fsyncing the backing file.
func (d *File) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.f.Sync(); err != nil {
		return fmt.Errorf("disk: sync: %w", err)
	}
	return nil
}

// Size returns the capacity of the device in bytes.
func (d *File) Size() int64 {
	return d.size
}

// Close syncs and closes the backing file.
func (d *File) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.f.Sync(); err != nil {
		_ = d.f.Close()
		return fmt.Errorf("disk: sync on close: %w", err)
	}
	return d.f.Close()
}
