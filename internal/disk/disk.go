// Package disk provides the raw storage substrate underneath the
// log-structured logical disk.
//
// The paper's prototype ran against the SunOS raw-disk interface on an
// HP C3010 (SCSI-II, 5400 rpm, 11.5 ms average seek). This package
// substitutes a deterministic simulated disk with an explicit
// service-time model and a virtual clock, so throughput experiments are
// reproducible and the *relative* cost of the concurrent-ARU machinery
// is preserved. The simulator also supports fault injection (crash
// points, torn writes, transient write errors) used by the recovery
// property tests.
package disk

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// SectorSize is the unit of atomic transfer to the medium. The paper's
// disk (and essentially all disks of its era) guaranteed atomicity only
// per 512-byte sector; torn-write injection exploits exactly that.
const SectorSize = 512

// Common errors returned by Disk implementations.
var (
	// ErrOutOfRange reports an access beyond the end of the device.
	ErrOutOfRange = errors.New("disk: access out of range")
	// ErrUnaligned reports a transfer that is not sector-aligned.
	ErrUnaligned = errors.New("disk: unaligned access")
	// ErrCrashed reports that a simulated crash has been triggered;
	// all subsequent I/O fails until the image is re-opened.
	ErrCrashed = errors.New("disk: simulated crash")
	// ErrInjected is the base error for injected transient faults.
	ErrInjected = errors.New("disk: injected fault")
)

// Disk is the sector-addressed block device used by the logical disk.
// Addresses and lengths are in bytes but must be sector-aligned.
//
// Implementations must be safe for concurrent use.
type Disk interface {
	// ReadAt reads len(p) bytes starting at byte offset off.
	ReadAt(p []byte, off int64) error
	// WriteAt writes len(p) bytes starting at byte offset off.
	WriteAt(p []byte, off int64) error
	// Sync forces all completed writes to stable storage.
	Sync() error
	// Size returns the capacity of the device in bytes.
	Size() int64
}

// Geometry describes the performance model of a simulated disk. The
// defaults mirror the HP C3010 used in the paper's evaluation.
type Geometry struct {
	// RPM is the spindle speed; rotational latency is modeled as half
	// a revolution per request.
	RPM int
	// AvgSeek is the average seek time. Seeks are modeled as
	// AvgSeek scaled by the fraction of the total capacity the head
	// moves, with a fixed minimum settle time.
	AvgSeek time.Duration
	// MinSeek is the track-to-track settle time (the floor of the seek
	// model for small head movements).
	MinSeek time.Duration
	// TransferRate is the media transfer rate in bytes/second.
	TransferRate int64
	// CtlOverhead is the fixed per-request controller overhead.
	CtlOverhead time.Duration
}

// HPC3010 returns the geometry of the 2 GB HP C3010 drive from the
// paper's testbed (SCSI-II, 5400 rpm, 11.5 ms average seek). The
// transfer rate reflects the drive's ~2.3 MB/s sustained media rate.
func HPC3010() Geometry {
	return Geometry{
		RPM:          5400,
		AvgSeek:      11500 * time.Microsecond,
		MinSeek:      1700 * time.Microsecond,
		TransferRate: 2300 * 1024,
		CtlOverhead:  500 * time.Microsecond,
	}
}

// halfRotation returns the modeled rotational latency (half a spindle
// revolution).
func (g Geometry) halfRotation() time.Duration {
	if g.RPM <= 0 {
		return 0
	}
	perRev := time.Duration(int64(time.Minute) / int64(g.RPM))
	return perRev / 2
}

// serviceTime returns the modeled time to transfer n bytes at byte
// offset off, given the previous head position prev and total capacity.
func (g Geometry) serviceTime(prev, off, n, capacity int64) time.Duration {
	d := g.CtlOverhead
	gap := off - prev
	if gap != 0 {
		dist := gap
		if dist < 0 {
			dist = -dist
		}
		seek := g.MinSeek
		if capacity > 0 && g.AvgSeek > 0 {
			// Simple linear seek model: the average seek of the
			// drive corresponds to a stroke of one third of the
			// capacity, as for a uniformly random pair of tracks.
			scaled := time.Duration(int64(g.AvgSeek) * 3 * dist / capacity)
			if scaled > seek {
				seek = scaled
			}
		}
		reposition := seek + g.halfRotation()
		if gap > 0 && g.TransferRate > 0 {
			// Forward gaps may instead rotate past under the head at
			// media speed (track-local locality); the controller takes
			// whichever is cheaper.
			passOver := time.Duration(gap * int64(time.Second) / g.TransferRate)
			if passOver < reposition {
				reposition = passOver
			}
		}
		d += reposition
	}
	if g.TransferRate > 0 {
		d += time.Duration(n * int64(time.Second) / g.TransferRate)
	}
	return d
}

// Stats holds operation counters for a simulated disk.
type Stats struct {
	Reads        int64         // completed read requests
	Writes       int64         // completed write requests
	BytesRead    int64         // total bytes read
	BytesWritten int64         // total bytes written
	Syncs        int64         // completed Sync calls
	Elapsed      time.Duration // simulated time consumed by all I/O
}

// FaultPlan configures fault injection on a simulated disk. The zero
// value injects nothing.
type FaultPlan struct {
	// CrashAfterWrites triggers a crash once this many write requests
	// have completed (0 disables). The crash takes effect *during* the
	// next write: the write is (possibly partially) applied and then
	// ErrCrashed is returned; all later I/O fails with ErrCrashed.
	CrashAfterWrites int64
	// TornSectors, when a crash triggers mid-write, bounds how many
	// leading sectors of the fatal write reach the medium. A negative
	// value means the fatal write is lost entirely; 0 means all of it
	// lands (crash strictly after the write).
	TornSectors int
	// TornHistory makes the crash tear *any* write still in flight, not
	// just the fatal one: when a crash triggers — via CrashAfterWrites
	// or Crash — up to this many of the most recent writes since the
	// last completed Sync may be deterministically rolled back to a torn
	// sector prefix (or revoked entirely), newest first, driven by
	// TornSeed. 0 disables; only the fatal write can then tear. Sync is
	// the barrier: writes acknowledged by a completed Sync never tear.
	TornHistory int
	// TornSeed seeds the deterministic tear decisions taken for the
	// TornHistory window, so a failing crash state can be replayed.
	TornSeed int64
	// WriteErrorEvery injects a transient write error on every Nth
	// write request (0 disables). The failed write is not applied.
	WriteErrorEvery int64
}

// Sim is an in-memory simulated disk with a deterministic service-time
// model, a virtual clock, and fault injection.
type Sim struct {
	geom Geometry

	mu    sync.Mutex
	store []byte
	// head is the last byte position of the actuator, for the seek
	// model. Locked paths update it under mu; ReadAtShared swaps it
	// atomically, so the shared stream contends for the same actuator
	// and interleaved read/write streams keep paying seeks.
	head    atomic.Int64
	stats   Stats
	crashed atomic.Bool
	plan    FaultPlan
	writes  int64 // total write requests issued (for fault triggers)
	// sharedReads/sharedBytes count ReadAtShared traffic; they are
	// separate atomics (not s.stats fields) so shared reads never touch
	// the mutex. Stats() folds them in. sharedElapsed accumulates the
	// shared stream's modeled service time, so shared reads pay the
	// same seek/rotation/transfer costs as locked ones and benchmark
	// shapes survive the lock-free read path.
	sharedReads   int64
	sharedBytes   int64
	sharedElapsed int64 // nanoseconds
	// unsynced records the pre-image of every write since the last
	// completed Sync, newest last, so a crash can roll writes back to a
	// torn prefix. Maintained only while plan.TornHistory > 0.
	unsynced []preImage
	// syncDelay is a real (wall-clock) latency each Sync sleeps for,
	// modeling a device cache flush. Zero by default; it exists so
	// group-commit benchmarks and tests have an actual sync cost to
	// amortize. It does not advance the virtual clock (stats.Elapsed).
	syncDelay time.Duration
}

// preImage remembers what one write overwrote, so the crash handler can
// revoke the write's suffix (or all of it).
type preImage struct {
	off   int64
	prior []byte // contents before the write
	fresh []byte // what the write put there (re-applied up to the tear)
}

var _ Disk = (*Sim)(nil)

// NewSim returns a simulated disk of the given capacity using geometry
// g. Capacity is rounded down to a whole number of sectors.
func NewSim(capacity int64, g Geometry) *Sim {
	capacity -= capacity % SectorSize
	if capacity < 0 {
		capacity = 0
	}
	return &Sim{geom: g, store: make([]byte, capacity)}
}

// NewMem returns a simulated disk with no service-time model, useful
// for unit tests that only care about contents.
func NewMem(capacity int64) *Sim {
	return NewSim(capacity, Geometry{})
}

// FromImage returns a simulated disk whose initial contents are a copy
// of img, using geometry g. The image length is rounded down to whole
// sectors, like NewSim.
func FromImage(img []byte, g Geometry) *Sim {
	s := NewSim(int64(len(img)), g)
	copy(s.store, img)
	return s
}

// SetFaultPlan installs a fault-injection plan. It may be called at any
// time; counters that have already passed a trigger do not re-fire.
func (s *Sim) SetFaultPlan(p FaultPlan) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.plan = p
}

// Size returns the capacity of the device in bytes.
func (s *Sim) Size() int64 {
	return int64(len(s.store))
}

// Stats returns a snapshot of the operation counters.
func (s *Sim) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Reads += atomic.LoadInt64(&s.sharedReads)
	st.BytesRead += atomic.LoadInt64(&s.sharedBytes)
	st.Elapsed += time.Duration(atomic.LoadInt64(&s.sharedElapsed))
	return st
}

// ResetStats zeroes the operation counters (the virtual clock restarts
// from zero as well). Contents are unaffected.
func (s *Sim) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = Stats{}
	atomic.StoreInt64(&s.sharedReads, 0)
	atomic.StoreInt64(&s.sharedElapsed, 0)
	atomic.StoreInt64(&s.sharedBytes, 0)
}

// Crashed reports whether a simulated crash has been triggered.
func (s *Sim) Crashed() bool {
	return s.crashed.Load()
}

// Crash triggers an immediate simulated crash: all subsequent I/O fails
// with ErrCrashed until Image/Reopen is used to recover the contents.
// With FaultPlan.TornHistory set, un-synced writes may be rolled back
// to torn prefixes, as for a crash triggered by CrashAfterWrites.
//
// Crash rewrites medium contents in place (the torn-history rewind), so
// callers that issue lock-free ReadAtShared requests must quiesce them
// before crashing, exactly as they would have to stop DMA before
// pulling the power on real hardware.
func (s *Sim) Crash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.crashed.Store(true)
	s.tearHistoryLocked()
}

// tearHistoryLocked deterministically revokes suffixes of the writes
// still in flight (issued since the last completed Sync), modeling a
// device that reorders and loses cached writes at power failure. The
// last plan.TornHistory un-synced writes are eligible; each is kept
// whole, torn to a sector prefix, or revoked entirely, per an RNG
// seeded with plan.TornSeed.
func (s *Sim) tearHistoryLocked() {
	if s.plan.TornHistory <= 0 || len(s.unsynced) == 0 {
		s.unsynced = nil
		return
	}
	window := s.unsynced
	if len(window) > s.plan.TornHistory {
		window = window[len(window)-s.plan.TornHistory:]
	}
	// Rewind the whole window (newest first exactly undoes it), then
	// re-apply each write in order with its torn length, so overlapping
	// writes resolve consistently.
	for i := len(window) - 1; i >= 0; i-- {
		w := window[i]
		copy(s.store[w.off:w.off+int64(len(w.prior))], w.prior)
	}
	rng := rand.New(rand.NewSource(s.plan.TornSeed))
	for _, w := range window {
		sectors := len(w.fresh) / SectorSize
		keep := sectors
		if rng.Intn(2) == 1 {
			keep = rng.Intn(sectors) // 0 = revoked entirely
		}
		copy(s.store[w.off:w.off+int64(keep*SectorSize)], w.fresh[:keep*SectorSize])
	}
	s.unsynced = nil
}

// Image returns a copy of the current medium contents. Combined with
// Reopen it models "power back on after a crash".
func (s *Sim) Image() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	img := make([]byte, len(s.store))
	copy(img, s.store)
	return img
}

// Reopen returns a fresh, uncrashed simulated disk whose contents are
// img, using the same geometry as s.
func (s *Sim) Reopen(img []byte) *Sim {
	n := NewSim(int64(len(img)), s.geom)
	copy(n.store, img)
	return n
}

// Recycle models a power cycle: it returns a fresh, uncrashed disk
// holding the current medium contents (shorthand for Reopen(Image()),
// the step every crash/recovery test performs).
func (s *Sim) Recycle() *Sim {
	return s.Reopen(s.Image())
}

func (s *Sim) checkRange(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > int64(len(s.store)) {
		return fmt.Errorf("%w: off=%d len=%d size=%d", ErrOutOfRange, off, len(p), len(s.store))
	}
	if off%SectorSize != 0 || len(p)%SectorSize != 0 {
		return fmt.Errorf("%w: off=%d len=%d", ErrUnaligned, off, len(p))
	}
	return nil
}

// ReadAt implements Disk.
func (s *Sim) ReadAt(p []byte, off int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed.Load() {
		return ErrCrashed
	}
	if err := s.checkRange(p, off); err != nil {
		return err
	}
	copy(p, s.store[off:off+int64(len(p))])
	s.stats.Reads++
	s.stats.BytesRead += int64(len(p))
	s.stats.Elapsed += s.geom.serviceTime(s.head.Swap(off+int64(len(p))), off, int64(len(p)), int64(len(s.store)))
	return nil
}

// ReadAtShared reads len(p) bytes at byte offset off without taking the
// simulator lock, modeling the concurrent request streams a real
// controller serves (pread on a raw device does not serialize against
// other readers). It does not advance the head or the virtual clock,
// and it is only safe for regions the caller knows are quiescent: the
// MVCC read path guarantees this by epoch-gating segment reuse, so no
// writer ever targets a region a live snapshot still references.
func (s *Sim) ReadAtShared(p []byte, off int64) error {
	if s.crashed.Load() {
		return ErrCrashed
	}
	// len(s.store) is immutable after NewSim, so checkRange is safe
	// without the lock.
	if err := s.checkRange(p, off); err != nil {
		return err
	}
	copy(p, s.store[off:off+int64(len(p))])
	atomic.AddInt64(&s.sharedReads, 1)
	atomic.AddInt64(&s.sharedBytes, int64(len(p)))
	prev := s.head.Swap(off + int64(len(p)))
	cost := s.geom.serviceTime(prev, off, int64(len(p)), int64(len(s.store)))
	atomic.AddInt64(&s.sharedElapsed, int64(cost))
	return nil
}

// WriteAt implements Disk.
func (s *Sim) WriteAt(p []byte, off int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed.Load() {
		return ErrCrashed
	}
	if err := s.checkRange(p, off); err != nil {
		return err
	}
	s.writes++
	if s.plan.WriteErrorEvery > 0 && s.writes%s.plan.WriteErrorEvery == 0 {
		return fmt.Errorf("%w: transient write error at request %d", ErrInjected, s.writes)
	}
	if s.plan.CrashAfterWrites > 0 && s.writes > s.plan.CrashAfterWrites {
		// Fatal write: tear the in-flight history, apply a (possibly
		// torn) prefix of the fatal write itself, then crash.
		s.crashed.Store(true)
		s.tearHistoryLocked()
		if s.plan.TornSectors >= 0 {
			n := int64(len(p))
			if s.plan.TornSectors > 0 {
				torn := int64(s.plan.TornSectors) * SectorSize
				if torn < n {
					n = torn
				}
			}
			copy(s.store[off:off+n], p[:n])
		}
		return ErrCrashed
	}
	if s.plan.TornHistory > 0 {
		pre := preImage{off: off,
			prior: make([]byte, len(p)), fresh: make([]byte, len(p))}
		copy(pre.prior, s.store[off:off+int64(len(p))])
		copy(pre.fresh, p)
		s.unsynced = append(s.unsynced, pre)
	}
	copy(s.store[off:off+int64(len(p))], p)
	s.stats.Writes++
	s.stats.BytesWritten += int64(len(p))
	s.stats.Elapsed += s.geom.serviceTime(s.head.Swap(off+int64(len(p))), off, int64(len(p)), int64(len(s.store)))
	return nil
}

// SetSyncDelay makes every subsequent Sync sleep for d of wall-clock
// time before returning, modeling a device cache flush. The sleep
// happens outside the simulator's lock, so reads and writes proceed
// during it (as they would against a real device with a flush in
// flight).
func (s *Sim) SetSyncDelay(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.syncDelay = d
}

// Sync implements Disk. The simulator applies writes synchronously, so
// Sync only accounts the request — and, as the reorder barrier, settles
// the in-flight writes a later crash could otherwise tear. With a
// SetSyncDelay configured it then sleeps, with the lock released;
// writes issued during the sleep are correctly not covered by the
// barrier (they were not in unsynced when it settled).
func (s *Sim) Sync() error {
	s.mu.Lock()
	if s.crashed.Load() {
		s.mu.Unlock()
		return ErrCrashed
	}
	s.stats.Syncs++
	s.unsynced = nil
	delay := s.syncDelay
	s.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	return nil
}
