package disk

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
)

func TestFileDeviceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.img")
	d, err := CreateFile(path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 1<<20 {
		t.Fatalf("size = %d", d.Size())
	}
	w := bytes.Repeat([]byte{0xcd}, 4096)
	if err := d.WriteAt(w, 8192); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the data persists; unwritten regions read as zero.
	d2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = d2.Close() }()
	r := make([]byte, 4096)
	if err := d2.ReadAt(r, 8192); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r, w) {
		t.Fatal("contents lost across close/open")
	}
	if err := d2.ReadAt(r, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r, make([]byte, 4096)) {
		t.Fatal("fresh region not zero")
	}
}

func TestFileDeviceErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.img")
	d, err := CreateFile(path, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = d.Close() }()
	buf := make([]byte, SectorSize)
	if err := d.ReadAt(buf, 3); !errors.Is(err, ErrUnaligned) {
		t.Errorf("unaligned: %v", err)
	}
	if err := d.WriteAt(buf, 1<<16); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("out of range: %v", err)
	}
	if _, err := CreateFile(path, 100); err == nil {
		t.Error("sub-sector capacity accepted")
	}
	if _, err := OpenFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file accepted")
	}
}
