// Package obs is the observability layer of the logical disk: a
// lock-free event tracer (a fixed-size atomic ring of typed events), a
// set of atomic log-scaled latency histograms, and an exposition layer
// (Prometheus text, expvar, pprof) for serving both over HTTP.
//
// The package is engine-agnostic: internal/core emits into a *Tracer
// attached via core.Params.Tracer, and embedding applications (the
// Minix file system, the transaction layer, commands) read the same
// Tracer back out through core.LLD.Tracer(), Metrics() and
// TraceEvents().
//
// # Hot-path cost
//
// With no tracer attached the engine pays a single nil-check per
// operation. With a tracer attached, recording one event is one
// atomic ticket increment plus a handful of atomic stores into the
// claimed ring slot, and one histogram observation is three atomic
// adds (count, sum, bucket). Nothing on the hot path allocates or
// takes a lock.
package obs

import (
	"fmt"
	"sync/atomic"
	"time"
)

// EventKind discriminates trace events.
type EventKind uint8

// Event kinds. Arg1/Arg2 of an Event are kind-specific; see each
// constant.
const (
	// EvARUBegin: an ARU was opened. ARU = its id.
	EvARUBegin EventKind = iota + 1
	// EvARUCommit: an ARU committed (EndARU returned). ARU = its id,
	// Arg1 = list operations replayed from its log.
	EvARUCommit
	// EvARUAbort: an ARU was aborted. ARU = its id.
	EvARUAbort
	// EvCommitDurable: a commit record reached stable storage (device
	// sync). ARU = its id.
	EvCommitDurable
	// EvRead: one block read. ARU = issuing ARU (0 = simple), Arg1 =
	// block id.
	EvRead
	// EvWrite: one block write. ARU = issuing ARU, Arg1 = block id.
	EvWrite
	// EvSegFlush: one sealed segment was written to the device. Arg1 =
	// segment index, Arg2 = log sequence number.
	EvSegFlush
	// EvCheckpoint: a table checkpoint was written. Arg1 = checkpoint
	// timestamp, Arg2 = flushed log sequence it covers.
	EvCheckpoint
	// EvCleanerPass: one cleaner invocation finished. Arg1 = segments
	// reclaimed.
	EvCleanerPass
	// EvRecoverySeg: recovery replayed one segment. Arg1 = segment
	// index, Arg2 = summary entries replayed from it.
	EvRecoverySeg
	// EvRecoveryDone: recovery finished. Arg1 = total entries
	// replayed, Arg2 = ARUs whose commit record was durable.
	EvRecoveryDone
	// EvFSOpBegin / EvFSOpEnd bracket one file-system-level operation
	// (a span enclosing the ARUs it issues). Arg1 = FSOp code.
	EvFSOpBegin
	EvFSOpEnd
	// EvCommitBatch: one group-commit batch completed (a single device
	// sync covering every commit in the batch). Arg1 = commit records
	// made durable, Arg2 = segments written.
	EvCommitBatch
	// EvARUPrepare: an ARU was prepared under a cross-shard two-phase
	// commit. ARU = its (shard-local) id, Arg1 = coordinator txn.
	EvARUPrepare
	// EvCoordCommit: a coordinator commit record reached stable
	// storage — the commit point of a cross-shard ARU. Arg1 =
	// coordinator txn, Arg2 = participant shards.
	EvCoordCommit
	// EvCkptDelta: an incremental checkpoint delta record was appended
	// to the chain. Arg1 = checkpoint timestamp, Arg2 = chain depth
	// after the append.
	EvCkptDelta
	// EvCkptCompact: the checkpoint chain was compacted into a fresh
	// full base in the other region. Arg1 = checkpoint timestamp,
	// Arg2 = chain depth before compaction.
	EvCkptCompact
	// EvRecoveryScan: recovery's parallel summary scan finished.
	// Arg1 = worker count, Arg2 = segments in the replay window.
	EvRecoveryScan
	// EvEpochPublish: the engine published a new MVCC read epoch.
	// Arg1 = epoch number, Arg2 = block-map size at publish.
	EvEpochPublish
	// EvSnapPurge: one retired epoch's refcount drained and its
	// retire-set was recycled. Arg1 = the purged epoch number.
	EvSnapPurge
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvARUBegin:
		return "aru-begin"
	case EvARUCommit:
		return "aru-commit"
	case EvARUAbort:
		return "aru-abort"
	case EvCommitDurable:
		return "commit-durable"
	case EvRead:
		return "read"
	case EvWrite:
		return "write"
	case EvSegFlush:
		return "seg-flush"
	case EvCheckpoint:
		return "checkpoint"
	case EvCleanerPass:
		return "cleaner-pass"
	case EvRecoverySeg:
		return "recovery-seg"
	case EvRecoveryDone:
		return "recovery-done"
	case EvFSOpBegin:
		return "fsop-begin"
	case EvFSOpEnd:
		return "fsop-end"
	case EvCommitBatch:
		return "commit-batch"
	case EvARUPrepare:
		return "aru-prepare"
	case EvCoordCommit:
		return "coord-commit"
	case EvCkptDelta:
		return "ckpt-delta"
	case EvCkptCompact:
		return "ckpt-compact"
	case EvRecoveryScan:
		return "recovery-scan"
	case EvEpochPublish:
		return "epoch-publish"
	case EvSnapPurge:
		return "snap-purge"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// FSOp identifies the file-system-level operation of an EvFSOpBegin /
// EvFSOpEnd span (carried in Arg1).
type FSOp uint32

// File-system operations traced by internal/minixfs.
const (
	FSOpCreate FSOp = iota + 1
	FSOpMkdir
	FSOpRemove
	FSOpRmdir
	FSOpLink
	FSOpRename
	FSOpTruncate
	FSOpWrite
)

// String implements fmt.Stringer.
func (op FSOp) String() string {
	switch op {
	case FSOpCreate:
		return "create"
	case FSOpMkdir:
		return "mkdir"
	case FSOpRemove:
		return "remove"
	case FSOpRmdir:
		return "rmdir"
	case FSOpLink:
		return "link"
	case FSOpRename:
		return "rename"
	case FSOpTruncate:
		return "truncate"
	case FSOpWrite:
		return "write"
	default:
		return fmt.Sprintf("fsop(%d)", uint32(op))
	}
}

// Event is one trace event, drained from the ring.
type Event struct {
	// Seq is the global emission ticket: events are totally ordered by
	// Seq, and a gap between consecutive drained events means the ring
	// wrapped over the missing ones.
	Seq uint64
	// TS is the monotonic emission time, relative to the tracer's
	// creation.
	TS time.Duration
	// Kind discriminates the event; ARU, Arg1 and Arg2 are
	// kind-specific (see the Ev* constants).
	Kind EventKind
	ARU  uint64
	Arg1 uint64
	Arg2 uint64
}

// String renders the event for timelines and debugging.
func (e Event) String() string {
	return fmt.Sprintf("%-14s seq=%-8d t=%-12s aru=%-6d arg1=%-6d arg2=%d",
		e.Kind, e.Seq, e.TS, e.ARU, e.Arg1, e.Arg2)
}

// HistID names one of the tracer's latency histograms.
type HistID int

// The tracer's histogram set.
const (
	// HistRead: latency of one successful LLD Read.
	HistRead HistID = iota
	// HistWrite: latency of one successful LLD Write.
	HistWrite
	// HistCommitDurable: EndARU-to-durable — from the moment EndARU
	// queued the commit record until the device sync that made it
	// stable.
	HistCommitDurable
	// HistSegFlush: sealing and writing one segment to the device.
	HistSegFlush
	// HistRecovery: one full crash recovery (Open).
	HistRecovery
	// HistCheckpoint: writing one table checkpoint.
	HistCheckpoint
	// HistCleanerPass: one cleaner invocation.
	HistCleanerPass
	// HistGroupCommitWait: time one Flush caller spent in the
	// group-commit broker, from enqueue until its batch's sync
	// completed (includes leading the batch, for the leader).
	HistGroupCommitWait
	// HistCommitBatch: group-commit batch sizes. Not a latency: each
	// "sample" is the number of commit records one batch made durable,
	// encoded as that many nanoseconds (Quantile/Mean then read
	// directly as commits-per-batch).
	HistCommitBatch
	// HistPrepare: the prepare phase of one cross-shard ARU — from the
	// start of the first participant's PrepareARU until every
	// participant's prepare record is durable.
	HistPrepare
	// HistCoordCommit: appending and syncing one coordinator commit
	// record (the 2PC commit point).
	HistCoordCommit
	// HistCkptDelta: appending one incremental checkpoint delta record
	// (full-base compactions still land in HistCheckpoint).
	HistCkptDelta
	// HistRecoveryScan: recovery's parallel summary scan — reading and
	// decoding every replay-window segment, through the worker pool.
	HistRecoveryScan

	numHists
)

// histName maps HistID to the exposition name (snake_case, unitless;
// the Prometheus layer appends "_seconds").
var histName = [numHists]string{
	HistRead:            "read",
	HistWrite:           "write",
	HistCommitDurable:   "commit_durable",
	HistSegFlush:        "segment_flush",
	HistRecovery:        "recovery",
	HistCheckpoint:      "checkpoint",
	HistCleanerPass:     "cleaner_pass",
	HistGroupCommitWait: "group_commit_wait",
	HistCommitBatch:     "commit_batch",
	HistPrepare:         "twopc_prepare",
	HistCoordCommit:     "coord_commit",
	HistCkptDelta:       "checkpoint_delta",
	HistRecoveryScan:    "recovery_scan",
}

// String implements fmt.Stringer.
func (h HistID) String() string {
	if h >= 0 && h < numHists {
		return histName[h]
	}
	return fmt.Sprintf("hist(%d)", int(h))
}

// Config configures a Tracer.
type Config struct {
	// RingSize is the event-ring capacity, rounded up to a power of
	// two (default 4096; negative disables event tracing, leaving only
	// the histograms).
	RingSize int
	// SpanRingSize is the completed-span ring capacity, rounded up to
	// a power of two (default 4096; negative disables span recording —
	// span emission then costs a single nil-check, and SpanContexts
	// stay zero so no trace context crosses the wire).
	SpanRingSize int
}

// Tracer is one observability sink: the event ring, the completed-span
// ring, and the latency histograms. A single Tracer may be shared by
// several engine instances (e.g. across crash/recover generations);
// all methods are safe for concurrent use and a nil *Tracer is a valid
// no-op sink.
type Tracer struct {
	start time.Time
	ring  *ring
	spans *spanRing
	ids   atomic.Uint64 // span/trace id source; see NextID
	hists [numHists]Histogram
}

// New creates a Tracer.
func New(cfg Config) *Tracer {
	t := &Tracer{start: time.Now()}
	if cfg.RingSize >= 0 {
		n := cfg.RingSize
		if n == 0 {
			n = 4096
		}
		t.ring = newRing(n)
	}
	if cfg.SpanRingSize >= 0 {
		n := cfg.SpanRingSize
		if n == 0 {
			n = 4096
		}
		t.spans = newSpanRing(n)
	}
	t.ids.Store(newIDBase())
	return t
}

// Now returns the current monotonic time relative to the tracer's
// creation — the timebase of Event.TS and of ObserveSince.
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

// TraceEnabled reports whether the tracer records events (it always
// maintains histograms).
func (t *Tracer) TraceEnabled() bool { return t != nil && t.ring != nil }

// Emit records one event. Safe on a nil tracer (no-op).
func (t *Tracer) Emit(kind EventKind, aru, arg1, arg2 uint64) {
	if t == nil || t.ring == nil {
		return
	}
	t.ring.emit(int64(time.Since(t.start)), kind, aru, arg1, arg2)
}

// Observe records one latency sample. Safe on a nil tracer (no-op).
func (t *Tracer) Observe(h HistID, d time.Duration) {
	if t == nil {
		return
	}
	t.hists[h].Observe(d)
}

// ObserveSince records the latency from t0 (a value of Now) until now.
func (t *Tracer) ObserveSince(h HistID, t0 time.Duration) {
	if t == nil {
		return
	}
	t.hists[h].Observe(time.Since(t.start) - t0)
}

// Events returns a snapshot of the events currently in the ring,
// ordered by Seq (oldest surviving first). Events being written at the
// instant of the snapshot are skipped; they appear in the next one.
func (t *Tracer) Events() []Event {
	if t == nil || t.ring == nil {
		return nil
	}
	return t.ring.snapshot()
}

// Histogram returns a snapshot of one histogram.
func (t *Tracer) Histogram(h HistID) HistSnapshot {
	if t == nil || h < 0 || h >= numHists {
		return HistSnapshot{Name: h.String()}
	}
	return t.hists[h].Snapshot(h.String())
}

// Histograms returns snapshots of every histogram, in HistID order.
func (t *Tracer) Histograms() []HistSnapshot {
	if t == nil {
		return nil
	}
	return t.HistogramsInto(nil)
}

// HistogramsInto is Histograms reusing the caller's slice (and each
// element's bucket backing) so a periodic scraper allocates nothing in
// the steady state. The returned slice has exactly numHists elements.
func (t *Tracer) HistogramsInto(out []HistSnapshot) []HistSnapshot {
	if t == nil {
		return nil
	}
	if cap(out) < int(numHists) {
		out = make([]HistSnapshot, numHists)
	} else {
		out = out[:numHists]
	}
	for h := HistID(0); h < numHists; h++ {
		t.hists[h].SnapshotInto(h.String(), &out[h])
	}
	return out
}
