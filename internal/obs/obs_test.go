package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRingConcurrent hammers one tracer from many goroutines while a
// reader drains continuously; run under -race this is the gate for the
// ring's lock-free discipline. Every drained snapshot must be
// Seq-ordered and hold only well-formed events.
func TestRingConcurrent(t *testing.T) {
	tr := New(Config{RingSize: 1024})
	const (
		writers = 8
		perW    = 5000
	)
	var writersWG, drainWG sync.WaitGroup
	stop := make(chan struct{})

	drainWG.Add(1)
	go func() { // continuous drainer
		defer drainWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			evs := tr.Events()
			for i, e := range evs {
				if i > 0 && evs[i-1].Seq >= e.Seq {
					t.Errorf("snapshot out of order: seq %d then %d", evs[i-1].Seq, e.Seq)
					return
				}
				if e.Kind < EvARUBegin || e.Kind > EvFSOpEnd {
					t.Errorf("malformed event kind %d", e.Kind)
					return
				}
			}
		}
	}()

	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < perW; i++ {
				tr.Emit(EvWrite, uint64(w), uint64(i), 0)
				tr.Observe(HistWrite, time.Duration(i)*time.Nanosecond)
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	drainWG.Wait()

	evs := tr.Events()
	if len(evs) == 0 {
		t.Fatal("no events drained")
	}
	if len(evs) > 1024 {
		t.Fatalf("ring returned %d events, capacity 1024", len(evs))
	}
	// The newest surviving ticket must be the last one issued.
	if got, want := evs[len(evs)-1].Seq, uint64(writers*perW); got != want {
		t.Fatalf("newest seq = %d, want %d", got, want)
	}
	if n := tr.Histogram(HistWrite).Count; n != writers*perW {
		t.Fatalf("histogram count = %d, want %d", n, writers*perW)
	}
}

// TestHistogramPercentiles checks quantiles against a known uniform
// distribution: 1..1000 µs in 1 µs steps.
func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot("uniform")
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	if got := s.Mean(); got < 400*time.Microsecond || got > 600*time.Microsecond {
		t.Fatalf("mean = %v, want ≈500µs", got)
	}
	// Log-scaled buckets guarantee ≤25% relative error above, and the
	// estimate is always an upper bucket bound (never below the true
	// quantile's bucket).
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Microsecond},
		{0.95, 950 * time.Microsecond},
		{0.99, 990 * time.Microsecond},
	}
	for _, c := range cases {
		got := s.Quantile(c.q)
		lo := c.want - c.want/4
		hi := c.want + c.want/4
		if got < lo || got > hi {
			t.Errorf("q%.2f = %v, want within 25%% of %v", c.q, got, c.want)
		}
	}
	if got := s.Quantile(1.0); got < 1000*time.Microsecond {
		t.Errorf("q1.0 = %v, want ≥ max sample 1ms", got)
	}
}

// TestHistogramMerge merges two disjoint distributions and checks the
// combined counts and quantiles.
func TestHistogramMerge(t *testing.T) {
	var fast, slow Histogram
	for i := 0; i < 900; i++ {
		fast.Observe(10 * time.Microsecond)
	}
	for i := 0; i < 100; i++ {
		slow.Observe(10 * time.Millisecond)
	}
	m := fast.Snapshot("lat").Merge(slow.Snapshot("lat"))
	if m.Count != 1000 {
		t.Fatalf("merged count = %d, want 1000", m.Count)
	}
	if got := m.Quantile(0.50); got > 13*time.Microsecond {
		t.Errorf("merged p50 = %v, want ≈10µs", got)
	}
	// 90% of samples are fast, so p95 must land in the slow mode.
	if got := m.Quantile(0.95); got < 8*time.Millisecond {
		t.Errorf("merged p95 = %v, want ≈10ms", got)
	}
	if got, want := m.SumNs, int64(900*10_000+100*10_000_000); got != want {
		t.Errorf("merged sum = %d, want %d", got, want)
	}
	// Merging with an empty snapshot is the identity.
	id := m.Merge(HistSnapshot{Name: "lat"})
	if id.Count != m.Count || id.SumNs != m.SumNs || len(id.Buckets) != len(m.Buckets) {
		t.Errorf("merge with empty changed the snapshot: %+v vs %+v", id, m)
	}
}

// TestBucketBounds pins the bucket function: indices are monotone,
// bounds are consistent, and relative error stays within 25%.
func TestBucketBounds(t *testing.T) {
	last := -1
	for _, ns := range []int64{0, 1, 2, 3, 4, 5, 7, 8, 9, 100, 1023, 1024, 1 << 20, 1 << 40} {
		i := bucketIndex(ns)
		if i < last {
			t.Fatalf("bucketIndex not monotone at %d ns", ns)
		}
		last = i
		ub := bucketUpperNs(i)
		if ub < ns {
			t.Fatalf("bucket %d upper bound %d < sample %d", i, ub, ns)
		}
		if ns >= 4 && float64(ub-ns) > 0.25*float64(ns) {
			t.Fatalf("bucket %d upper bound %d is >25%% above sample %d", i, ub, ns)
		}
	}
}

func TestSnakeCase(t *testing.T) {
	cases := map[string]string{
		"Reads":                  "reads",
		"CacheHits":              "cache_hits",
		"ARUsBegun":              "arus_begun",
		"RecoveredARUs":          "recovered_arus",
		"PredecessorSearchSteps": "predecessor_search_steps",
	}
	for in, want := range cases {
		if got := snakeCase(in); got != want {
			t.Errorf("snakeCase(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestHandler scrapes the Prometheus endpoint and checks the text
// format: counters as _total, histograms as cumulative buckets with a
// +Inf bound matching _count.
func TestHandler(t *testing.T) {
	tr := New(Config{})
	tr.Observe(HistRead, 5*time.Microsecond)
	tr.Observe(HistRead, 50*time.Microsecond)
	h := Handler(HandlerOptions{
		Counters: func() []Counter {
			return []Counter{{Name: "reads", Value: 2}}
		},
		Tracer: tr,
	})
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"# TYPE aru_reads_total counter",
		"aru_reads_total 2",
		"# TYPE aru_read_seconds histogram",
		"aru_read_seconds_bucket{le=\"+Inf\"} 2",
		"aru_read_seconds_count 2",
		"aru_segment_flush_seconds_count 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q\n%s", want, text)
		}
	}
}

// TestNilTracer: a nil tracer must be a safe no-op sink everywhere.
func TestNilTracer(t *testing.T) {
	var tr *Tracer
	tr.Emit(EvRead, 1, 2, 3)
	tr.Observe(HistRead, time.Second)
	tr.ObserveSince(HistRead, 0)
	if tr.Events() != nil || tr.Histograms() != nil || tr.TraceEnabled() {
		t.Fatal("nil tracer leaked state")
	}
	if s := tr.Histogram(HistRead); s.Count != 0 {
		t.Fatal("nil tracer histogram not empty")
	}
}
