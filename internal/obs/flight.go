package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"
)

// FlightRecorder is the always-on postmortem sink: it owns nothing
// itself — the tracer's event and span rings ARE the black box — but
// knows how to dump their contents, plus histogram snapshots and
// drop counters, as one JSON artifact when something goes wrong. The
// three triggers (panic, slow-RPC threshold breach, SIGUSR1) all
// funnel through TryDump, which rate-limits so a storm of slow RPCs
// produces one artifact, not thousands.
type FlightRecorder struct {
	t *Tracer
	// Dir receives the dump files (aru-flight-<unixnano>.json). Empty
	// means the current directory.
	Dir string
	// MinGap is the minimum interval between TryDump artifacts
	// (default 30s). Dump ignores it.
	MinGap time.Duration

	lastDump atomic.Int64 // unixnano of the last successful TryDump
	dumps    atomic.Uint64
}

// NewFlightRecorder wraps a tracer. A nil tracer is allowed — every
// method degrades to a no-op — so callers wire the recorder
// unconditionally and let the tracer decide.
func NewFlightRecorder(t *Tracer) *FlightRecorder {
	return &FlightRecorder{t: t, MinGap: 30 * time.Second}
}

// FlightDump is the artifact schema.
type FlightDump struct {
	Reason        string         `json:"reason"`
	Time          time.Time      `json:"time"`
	UptimeNs      int64          `json:"uptime_ns"`
	EventsDropped uint64         `json:"events_dropped"`
	SpansDropped  uint64         `json:"spans_dropped"`
	Histograms    []HistSnapshot `json:"histograms,omitempty"`
	Spans         []Span         `json:"spans,omitempty"`
	Events        []string       `json:"events,omitempty"`
}

// Dumps returns how many artifacts the recorder has written.
func (f *FlightRecorder) Dumps() uint64 {
	if f == nil {
		return 0
	}
	return f.dumps.Load()
}

// snapshot assembles the artifact from the tracer's current state.
func (f *FlightRecorder) snapshot(reason string) FlightDump {
	d := FlightDump{
		Reason:        reason,
		Time:          time.Now(),
		UptimeNs:      int64(f.t.Now()),
		EventsDropped: f.t.EventsDropped(),
		SpansDropped:  f.t.SpansDropped(),
		Histograms:    f.t.Histograms(),
		Spans:         f.t.Spans(),
	}
	events := f.t.Events()
	if len(events) > 0 {
		d.Events = make([]string, len(events))
		for i, e := range events {
			d.Events[i] = e.String()
		}
	}
	return d
}

// WriteTo writes the artifact for reason to w (used by tests and by
// callers that own the destination).
func (f *FlightRecorder) WriteTo(w io.Writer, reason string) error {
	if f == nil || f.t == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f.snapshot(reason))
}

// Dump unconditionally writes one artifact file and returns its path.
func (f *FlightRecorder) Dump(reason string) (string, error) {
	if f == nil || f.t == nil {
		return "", nil
	}
	dir := f.Dir
	if dir == "" {
		dir = "."
	}
	path := filepath.Join(dir, fmt.Sprintf("aru-flight-%d.json", time.Now().UnixNano()))
	file, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("obs: flight dump: %w", err)
	}
	err = f.WriteTo(file, reason)
	if cerr := file.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return "", fmt.Errorf("obs: flight dump: %w", err)
	}
	f.dumps.Add(1)
	return path, nil
}

// TryDump is Dump behind the rate limit: at most one artifact per
// MinGap, racing triggers collapse onto one winner. It returns the
// written path, or "" if suppressed.
func (f *FlightRecorder) TryDump(reason string) (string, error) {
	if f == nil || f.t == nil {
		return "", nil
	}
	gap := f.MinGap
	if gap <= 0 {
		gap = 30 * time.Second
	}
	now := time.Now().UnixNano()
	last := f.lastDump.Load()
	if last != 0 && now-last < int64(gap) {
		return "", nil
	}
	if !f.lastDump.CompareAndSwap(last, now) {
		return "", nil // another trigger won the slot
	}
	return f.Dump(reason)
}

// OnPanic is the deferred panic hook: if the goroutine is unwinding, it
// force-dumps (no rate limit — a crash artifact is always worth
// having) and re-panics. Usage: defer recorder.OnPanic().
func (f *FlightRecorder) OnPanic() {
	if r := recover(); r != nil {
		if f != nil && f.t != nil {
			if path, err := f.Dump(fmt.Sprintf("panic: %v", r)); err == nil && path != "" {
				fmt.Fprintf(os.Stderr, "flight recorder: dumped %s\n", path)
			}
		}
		panic(r)
	}
}
