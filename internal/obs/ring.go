package obs

import (
	"math/bits"
	"sort"
	"sync/atomic"
	"time"
)

// ring is a fixed-size, lock-free, multi-producer event buffer. A
// writer claims a slot with one atomic ticket increment and fills it
// with atomic stores; when the ring is full the oldest events are
// overwritten. Readers (snapshot) never block writers.
//
// Each slot carries a per-slot sequence word encoding both the ticket
// of the event it holds and a write-in-progress bit:
//
//	seq == 0            slot never written
//	seq == 2*ticket+1   writer for ticket is mid-flight
//	seq == 2*ticket     event for ticket is complete
//
// A reader loads seq, copies the payload, and re-loads seq: any
// concurrent overwrite changes seq, so a torn copy is detected and
// dropped. The one unguarded window is a writer stalled long enough
// for the ring to wrap back onto the slot it is still filling — then
// a payload can mix two events under the newer ticket. For a
// diagnostic trace that bounded imprecision is an accepted cost of
// staying lock-free; a Seq gap in the drained timeline flags that the
// ring wrapped.
type ring struct {
	mask  uint64
	next  atomic.Uint64 // ticket source; first ticket is 1
	slots []slot
}

type slot struct {
	seq  atomic.Uint64
	kind atomic.Uint32
	aru  atomic.Uint64
	arg1 atomic.Uint64
	arg2 atomic.Uint64
	ts   atomic.Int64
}

// newRing returns a ring of at least n slots (rounded up to a power of
// two, minimum 16).
func newRing(n int) *ring {
	if n < 16 {
		n = 16
	}
	size := 1 << bits.Len(uint(n-1)) // next power of two ≥ n
	return &ring{mask: uint64(size - 1), slots: make([]slot, size)}
}

// emit records one event.
func (r *ring) emit(ts int64, kind EventKind, aru, arg1, arg2 uint64) {
	ticket := r.next.Add(1)
	s := &r.slots[(ticket-1)&r.mask]
	s.seq.Store(2*ticket + 1) // mark mid-flight: readers skip
	s.kind.Store(uint32(kind))
	s.aru.Store(aru)
	s.arg1.Store(arg1)
	s.arg2.Store(arg2)
	s.ts.Store(ts)
	s.seq.Store(2 * ticket) // publish
}

// dropped returns how many events the ring has overwritten: every
// ticket beyond the capacity evicted the event capacity slots behind
// it. Torn snapshot copies are not counted — they are transient (the
// slot reappears complete in the next snapshot), whereas ticket
// overrun is permanent loss.
func (r *ring) dropped() uint64 {
	n := r.next.Load()
	if size := uint64(len(r.slots)); n > size {
		return n - size
	}
	return 0
}

// snapshot drains a consistent copy of every complete event, ordered
// by ticket.
func (r *ring) snapshot() []Event {
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		v := s.seq.Load()
		if v == 0 || v&1 == 1 {
			continue // never written, or a writer is mid-flight
		}
		e := Event{
			Kind: EventKind(s.kind.Load()),
			ARU:  s.aru.Load(),
			Arg1: s.arg1.Load(),
			Arg2: s.arg2.Load(),
		}
		ts := s.ts.Load()
		if s.seq.Load() != v {
			continue // overwritten while copying: drop the torn event
		}
		e.Seq = v / 2
		e.TS = time.Duration(ts)
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
