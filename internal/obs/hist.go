package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"sync/atomic"
	"time"
)

// histBuckets is the bucket count of a Histogram: four sub-buckets per
// power of two of nanoseconds (octave o, sub s covers
// [2^o + s·2^(o-2), 2^o + (s+1)·2^(o-2))), so any sample lands in a
// bucket whose bounds are within 25% of its true value. 64 octaves × 4
// covers the full int64 nanosecond range in a fixed 2 KB array.
const histBuckets = 256

// Histogram is a lock-free log-scaled latency histogram. Observe is
// three atomic adds; the zero value is ready to use.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64 // nanoseconds
	buckets [histBuckets]atomic.Uint64
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	h.buckets[bucketIndex(ns)].Add(1)
}

// bucketIndex maps a non-negative nanosecond value to its bucket.
func bucketIndex(ns int64) int {
	v := uint64(ns)
	if v < 4 {
		return int(v) // exact buckets for 0..3 ns
	}
	o := bits.Len64(v) - 1          // floor(log2 v), ≥ 2
	sub := (v >> (uint(o) - 2)) & 3 // next two bits below the leading one
	return o*4 + int(sub)
}

// bucketUpperNs returns the inclusive upper bound of bucket i.
func bucketUpperNs(i int) int64 {
	if i < 4 {
		return int64(i)
	}
	o, sub := i/4, i%4
	return int64((uint64(5+sub) << (uint(o) - 2)) - 1)
}

// Snapshot captures the histogram's current contents under the given
// name. Concurrent observations may be mid-flight; the snapshot is a
// consistent-enough view for monitoring (each cell is read atomically,
// counts are monotone).
func (h *Histogram) Snapshot(name string) HistSnapshot {
	var s HistSnapshot
	h.SnapshotInto(name, &s)
	return s
}

// SnapshotInto is Snapshot writing into a caller-owned value: the
// bucket slice is reused ([:0]) instead of reallocated, so a scraper
// that keeps one HistSnapshot per histogram pays no per-bucket
// allocation on repeated snapshots (e.g. /metrics polled mid-soak).
func (h *Histogram) SnapshotInto(name string, s *HistSnapshot) {
	s.Name = name
	s.Count = h.count.Load()
	s.SumNs = h.sum.Load()
	s.Buckets = s.Buckets[:0]
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			s.Buckets = append(s.Buckets, BucketCount{UpperNs: bucketUpperNs(i), Count: n})
		}
	}
}

// BucketCount is one non-empty histogram bucket: Count samples were ≤
// UpperNs nanoseconds (and above the previous bucket's bound). Counts
// are per-bucket, not cumulative.
type BucketCount struct {
	UpperNs int64  `json:"upper_ns"`
	Count   uint64 `json:"count"`
}

// HistSnapshot is an immutable point-in-time copy of one histogram,
// safe to serialize, merge and query.
type HistSnapshot struct {
	Name    string        `json:"name"`
	Count   uint64        `json:"count"`
	SumNs   int64         `json:"sum_ns"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Mean returns the average sample, or 0 when empty.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNs / int64(s.Count))
}

// Quantile returns the upper bound of the bucket containing the q-th
// quantile (0 < q ≤ 1), i.e. an estimate within the bucket resolution
// (≤ 25% relative error). Returns 0 when the histogram is empty.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= rank {
			return time.Duration(b.UpperNs)
		}
	}
	return time.Duration(s.Buckets[len(s.Buckets)-1].UpperNs)
}

// Merge returns the histogram holding both snapshots' samples. Both
// inputs must come from Histogram.Snapshot (bucket bounds align); the
// merged snapshot keeps the receiver's name.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	m := HistSnapshot{
		Name:  s.Name,
		Count: s.Count + o.Count,
		SumNs: s.SumNs + o.SumNs,
	}
	byBound := make(map[int64]uint64, len(s.Buckets)+len(o.Buckets))
	for _, b := range s.Buckets {
		byBound[b.UpperNs] += b.Count
	}
	for _, b := range o.Buckets {
		byBound[b.UpperNs] += b.Count
	}
	for ub, n := range byBound {
		m.Buckets = append(m.Buckets, BucketCount{UpperNs: ub, Count: n})
	}
	sort.Slice(m.Buckets, func(i, j int) bool { return m.Buckets[i].UpperNs < m.Buckets[j].UpperNs })
	return m
}

// String renders a one-line summary: count, mean and the tail
// percentiles through p999.
func (s HistSnapshot) String() string {
	return fmt.Sprintf("%s: n=%d mean=%v p50=%v p95=%v p99=%v p999=%v",
		s.Name, s.Count, s.Mean(), s.Quantile(0.50), s.Quantile(0.95),
		s.Quantile(0.99), s.Quantile(0.999))
}
