package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is one named monotone counter for exposition.
type Counter struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// FlattenCounters turns a flat struct of int64 fields (such as
// core.Stats) into named counters: each exported int64 field becomes
// snake_case(field name). Non-int64 fields are skipped.
func FlattenCounters(v any) []Counter {
	rv := reflect.ValueOf(v)
	if rv.Kind() == reflect.Pointer {
		rv = rv.Elem()
	}
	if rv.Kind() != reflect.Struct {
		return nil
	}
	rt := rv.Type()
	out := make([]Counter, 0, rt.NumField())
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		if !f.IsExported() || f.Type.Kind() != reflect.Int64 {
			continue
		}
		out = append(out, Counter{Name: snakeCase(f.Name), Value: rv.Field(i).Int()})
	}
	return out
}

// snakeCase converts CamelCase to snake_case, breaking only at a
// lower-or-digit→upper boundary so acronym runs stay whole:
// "CacheHits" → "cache_hits", "ARUsBegun" → "arus_begun".
func snakeCase(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 4)
	for i, r := range s {
		if r >= 'A' && r <= 'Z' {
			if i > 0 {
				prev := s[i-1]
				if prev >= 'a' && prev <= 'z' || prev >= '0' && prev <= '9' {
					b.WriteByte('_')
				}
			}
			r += 'a' - 'A'
		}
		b.WriteRune(r)
	}
	return b.String()
}

// HandlerOptions configures the /metrics endpoint.
type HandlerOptions struct {
	// Namespace prefixes every series name (default "aru").
	Namespace string
	// Counters is polled at each scrape for the current counter
	// values (e.g. func() []Counter { return
	// obs.FlattenCounters(d.Stats()) }). Optional.
	Counters func() []Counter
	// Tracer supplies the latency histograms. Optional.
	Tracer *Tracer
	// Extra supplies additional histogram snapshots rendered after
	// the Tracer's — e.g. the network server's per-RPC latencies
	// (ldnet.Metrics.Histograms). Optional.
	Extra func() []HistSnapshot
}

func (o HandlerOptions) namespace() string {
	if o.Namespace == "" {
		return "aru"
	}
	return o.Namespace
}

// Handler returns an http.Handler rendering the counters and
// histograms in the Prometheus text exposition format: every counter
// as <ns>_<name>_total and every histogram as the
// <ns>_<name>_seconds bucket/sum/count triple.
func Handler(o HandlerOptions) http.Handler {
	// The tracer snapshots are taken into a scratch owned by the
	// handler (serialized by mu), so repeated scrapes reuse the bucket
	// backing instead of allocating per bucket — scraping mid-soak must
	// not perturb the engine's allocation profile.
	var mu sync.Mutex
	var scratch []HistSnapshot
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		ns := o.namespace()
		if o.Counters != nil {
			for _, c := range o.Counters() {
				fmt.Fprintf(w, "# TYPE %s_%s_total counter\n", ns, c.Name)
				fmt.Fprintf(w, "%s_%s_total %d\n", ns, c.Name, c.Value)
			}
		}
		if o.Tracer != nil {
			// Trace-loss counters: ring-ticket overrun means the
			// timeline on /debug/trace is incomplete, which must be
			// visible to the scraper, not silent.
			fmt.Fprintf(w, "# TYPE %s_trace_events_dropped_total counter\n", ns)
			fmt.Fprintf(w, "%s_trace_events_dropped_total %d\n", ns, o.Tracer.EventsDropped())
			fmt.Fprintf(w, "# TYPE %s_trace_spans_dropped_total counter\n", ns)
			fmt.Fprintf(w, "%s_trace_spans_dropped_total %d\n", ns, o.Tracer.SpansDropped())
		}
		mu.Lock()
		scratch = o.Tracer.HistogramsInto(scratch)
		for _, h := range scratch {
			writePromHistogram(w, ns, h)
		}
		mu.Unlock()
		if o.Extra != nil {
			for _, h := range o.Extra() {
				writePromHistogram(w, ns, h)
			}
		}
	})
}

// writePromHistogram renders one histogram in Prometheus text format.
// Buckets become cumulative with `le` bounds in seconds.
func writePromHistogram(w http.ResponseWriter, ns string, h HistSnapshot) {
	name := fmt.Sprintf("%s_%s_seconds", ns, h.Name)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	var cum uint64
	for _, b := range h.Buckets {
		cum += b.Count
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, float64(b.UpperNs)/1e9, cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.SumNs)/1e9)
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
}

// expvar publication: one process-wide "aru" variable whose value
// tracks the most recent ServeMetrics/NewMux options. Publish panics
// on duplicate names, so registration happens once and the options
// are swapped through an atomic pointer.
var (
	expvarOnce sync.Once
	expvarOpts atomic.Pointer[HandlerOptions]
)

func publishExpvar(o HandlerOptions) {
	expvarOpts.Store(&o)
	expvarOnce.Do(func() {
		expvar.Publish("aru", expvar.Func(func() any {
			o := expvarOpts.Load()
			if o == nil {
				return nil
			}
			v := struct {
				Counters   []Counter      `json:"counters,omitempty"`
				Histograms []HistSnapshot `json:"histograms,omitempty"`
			}{}
			if o.Counters != nil {
				v.Counters = o.Counters()
				sort.Slice(v.Counters, func(i, j int) bool { return v.Counters[i].Name < v.Counters[j].Name })
			}
			v.Histograms = o.Tracer.Histograms()
			if o.Extra != nil {
				v.Histograms = append(v.Histograms, o.Extra()...)
			}
			return v
		}))
	})
}

// NewMux builds the full observability mux: /metrics (Prometheus
// text), /debug/vars (expvar, including an "aru" variable mirroring
// the metrics), and the /debug/pprof suite.
func NewMux(o HandlerOptions) *http.ServeMux {
	publishExpvar(o)
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(o))
	mux.Handle("/debug/trace", TraceHandler(o.Tracer))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeMetrics listens on addr (e.g. ":6060") and serves the
// observability mux in a background goroutine. It returns the bound
// address (useful with ":0") and a shutdown-capable server.
func ServeMetrics(addr string, o HandlerOptions) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewMux(o)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}
