package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"sync/atomic"
	"time"
)

// Spans are the causal layer of the tracer: where events answer "what
// happened", spans answer "on behalf of whom, and what made it
// durable". A span carries a trace identifier shared by every span of
// one logical request (propagated across the ldnet wire), its own span
// identifier, and the identifier of its parent, so a single durable
// commit can be followed from the client RPC through the server
// dispatch, the engine commit, the group-commit batch it rode, and the
// device sync that made it durable (DESIGN.md §13).
//
// Recording a completed span is one atomic ticket increment plus a
// handful of atomic stores — no locks, no allocations — and a nil or
// span-disabled tracer costs a single nil-check, exactly like the
// event ring.

// SpanKind discriminates spans; Arg1/Arg2 are kind-specific.
type SpanKind uint8

// Span kinds.
const (
	// SpanClientRPC: one client-side RPC, from send to completion.
	// ARU = the ARU named by the request (0 = none/simple), Arg1 =
	// opcode, Arg2 = 1 if the call failed.
	SpanClientRPC SpanKind = iota + 1
	// SpanServerOp: one server-side dispatch of a request that carried
	// trace context. ARU = the ARU named, Arg1 = opcode, Arg2 = wire
	// status (0 = OK).
	SpanServerOp
	// SpanEngineCommit: one EndARU executed with trace context. ARU =
	// the committed unit, Arg1 = list operations replayed.
	SpanEngineCommit
	// SpanEngineFlush: one Flush executed with trace context — the
	// caller's wait on the group-commit broker (or the serial sync).
	SpanEngineFlush
	// SpanCommitDurable: the durability ack of one committed unit —
	// from EndARU queueing the commit record until the covering device
	// sync completed. ARU = the unit, Arg1 = the group-commit batch
	// that made it durable (0 = serial path), Arg2 = the device sync.
	// This span is the batch-causality invariant made visible: every
	// durable ack names its sync.
	SpanCommitDurable
	// SpanCommitBatch: one group-commit batch, from leader election to
	// completion. Arg1 = batch id, Arg2 = commit records made durable.
	SpanCommitBatch
	// SpanDeviceSync: the device sync of one batch (parent = the batch
	// span). Arg1 = sync id.
	SpanDeviceSync
	// SpanSegFlush: one sealed segment written by a batch leader
	// (parent = the batch span). Arg1 = segment index, Arg2 = log seq.
	SpanSegFlush
	// SpanRecovery: one full crash recovery. Arg1 = entries replayed,
	// Arg2 = ARUs recovered.
	SpanRecovery
	// SpanRecoverySeg: replay of one segment during recovery (parent =
	// the recovery span). Arg1 = segment index, Arg2 = entries.
	SpanRecoverySeg
	// Span2PC: one cross-shard ARU commit, from the first participant
	// prepare until every participant applied the decision (parent =
	// the caller's context, e.g. the server op span). ARU = the
	// external unit id, Arg1 = coordinator txn, Arg2 = participants.
	Span2PC
	// SpanEnginePrepare: one PrepareARU on a participant shard (parent
	// = the 2PC span). ARU = the shard-local unit, Arg1 = coordinator
	// txn, Arg2 = list operations pre-logged.
	SpanEnginePrepare
	// SpanCoordCommit: appending + syncing the coordinator commit
	// record — the 2PC commit point (parent = the 2PC span). Arg1 =
	// coordinator txn.
	SpanCoordCommit
	// SpanRecoveryScan: the parallel summary-scan phase of one
	// recovery (parent = the recovery span). Arg1 = worker count,
	// Arg2 = segments in the replay window.
	SpanRecoveryScan
)

// String implements fmt.Stringer.
func (k SpanKind) String() string {
	switch k {
	case SpanClientRPC:
		return "client-rpc"
	case SpanServerOp:
		return "server-op"
	case SpanEngineCommit:
		return "engine-commit"
	case SpanEngineFlush:
		return "engine-flush"
	case SpanCommitDurable:
		return "commit-durable"
	case SpanCommitBatch:
		return "commit-batch"
	case SpanDeviceSync:
		return "device-sync"
	case SpanSegFlush:
		return "seg-flush"
	case SpanRecovery:
		return "recovery"
	case SpanRecoverySeg:
		return "recovery-seg"
	case Span2PC:
		return "twopc-commit"
	case SpanEnginePrepare:
		return "engine-prepare"
	case SpanCoordCommit:
		return "coord-commit"
	case SpanRecoveryScan:
		return "recovery-scan"
	default:
		return fmt.Sprintf("span(%d)", uint8(k))
	}
}

// SpanContext is the propagated part of a span: the trace it belongs
// to and the span that will parent whatever the receiver does on its
// behalf. The zero value means "untraced"; it travels by value and is
// what the ldnet wire extension carries.
type SpanContext struct {
	Trace uint64
	Span  uint64
}

// Traced reports whether the context carries a live trace.
func (sc SpanContext) Traced() bool { return sc.Trace != 0 }

// Span is one completed span, drained from the span ring.
type Span struct {
	// Seq is the global emission ticket (total order; a gap means the
	// ring wrapped over the missing spans).
	Seq uint64 `json:"seq"`
	// Trace groups every span of one logical request.
	Trace uint64 `json:"trace"`
	// ID identifies this span; Parent is the span it ran on behalf of
	// (0 = root).
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	// Kind discriminates the span; ARU, Arg1, Arg2 are kind-specific.
	Kind SpanKind `json:"kind"`
	// Start is the span's begin time on the emitting tracer's
	// timebase (Tracer.Now); Dur is its length.
	Start time.Duration `json:"start_ns"`
	Dur   time.Duration `json:"dur_ns"`
	ARU   uint64        `json:"aru,omitempty"`
	Arg1  uint64        `json:"arg1,omitempty"`
	Arg2  uint64        `json:"arg2,omitempty"`
}

// String renders the span for timelines and debugging.
func (s Span) String() string {
	return fmt.Sprintf("%-14s trace=%-8x id=%-8x parent=%-8x t=%-12s dur=%-10s aru=%-4d arg1=%-6d arg2=%d",
		s.Kind, s.Trace, s.ID, s.Parent, s.Start, s.Dur, s.ARU, s.Arg1, s.Arg2)
}

// spanRing is the fixed-size lock-free completed-span buffer. It uses
// the same per-slot sequence protocol as the event ring (see ring.go):
// writers claim a ticket, mark the slot mid-flight, fill it with
// atomic stores and publish; readers detect torn copies by re-loading
// the slot sequence.
type spanRing struct {
	mask  uint64
	next  atomic.Uint64
	slots []spanSlot
}

type spanSlot struct {
	seq    atomic.Uint64
	trace  atomic.Uint64
	id     atomic.Uint64
	parent atomic.Uint64
	kind   atomic.Uint32
	start  atomic.Int64
	dur    atomic.Int64
	aru    atomic.Uint64
	arg1   atomic.Uint64
	arg2   atomic.Uint64
}

func newSpanRing(n int) *spanRing {
	if n < 16 {
		n = 16
	}
	size := 1 << bits.Len(uint(n-1))
	return &spanRing{mask: uint64(size - 1), slots: make([]spanSlot, size)}
}

func (r *spanRing) emit(s Span) {
	ticket := r.next.Add(1)
	sl := &r.slots[(ticket-1)&r.mask]
	sl.seq.Store(2*ticket + 1)
	sl.trace.Store(s.Trace)
	sl.id.Store(s.ID)
	sl.parent.Store(s.Parent)
	sl.kind.Store(uint32(s.Kind))
	sl.start.Store(int64(s.Start))
	sl.dur.Store(int64(s.Dur))
	sl.aru.Store(s.ARU)
	sl.arg1.Store(s.Arg1)
	sl.arg2.Store(s.Arg2)
	sl.seq.Store(2 * ticket)
}

// dropped returns how many spans the ring has overwritten: every
// ticket beyond the capacity evicted the span capacity slots behind
// it. Torn snapshot copies are transient (the span reappears complete
// in the next snapshot) and are not counted.
func (r *spanRing) dropped() uint64 {
	n := r.next.Load()
	if size := uint64(len(r.slots)); n > size {
		return n - size
	}
	return 0
}

func (r *spanRing) snapshot() []Span {
	out := make([]Span, 0, len(r.slots))
	for i := range r.slots {
		sl := &r.slots[i]
		v := sl.seq.Load()
		if v == 0 || v&1 == 1 {
			continue
		}
		s := Span{
			Trace:  sl.trace.Load(),
			ID:     sl.id.Load(),
			Parent: sl.parent.Load(),
			Kind:   SpanKind(sl.kind.Load()),
			Start:  time.Duration(sl.start.Load()),
			Dur:    time.Duration(sl.dur.Load()),
			ARU:    sl.aru.Load(),
			Arg1:   sl.arg1.Load(),
			Arg2:   sl.arg2.Load(),
		}
		if sl.seq.Load() != v {
			continue // overwritten while copying
		}
		s.Seq = v / 2
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// idSalt decorrelates the identifier streams of tracers created in the
// same nanosecond (e.g. a client and a server tracer in one test
// process): each tracer folds a distinct salt into its seed.
var idSalt atomic.Uint64

// newIDBase seeds a tracer's span/trace identifier counter. The high
// bits come from the wall clock so two *processes* (an ldnet client
// and its server) hand out disjoint identifiers, which keeps a trace
// that spans both sides free of collisions without any coordination.
func newIDBase() uint64 {
	return (uint64(time.Now().UnixNano()) << 16) ^ (idSalt.Add(1) << 4)
}

// NextID returns a fresh span or trace identifier, unique within this
// tracer and — thanks to the time-seeded base — effectively unique
// across the processes of one deployment. Safe on a nil tracer (it
// returns 0, the untraced identifier).
func (t *Tracer) NextID() uint64 {
	if t == nil {
		return 0
	}
	return t.ids.Add(1)
}

// SpanEnabled reports whether the tracer records spans.
func (t *Tracer) SpanEnabled() bool { return t != nil && t.spans != nil }

// EmitSpan records one completed span. Safe on a nil or span-disabled
// tracer (no-op). The caller fills Start/Dur from Now; Seq is assigned
// by the ring.
func (t *Tracer) EmitSpan(s Span) {
	if t == nil || t.spans == nil {
		return
	}
	t.spans.emit(s)
}

// Spans returns a snapshot of the spans currently in the ring, ordered
// by Seq (oldest surviving first).
func (t *Tracer) Spans() []Span {
	if t == nil || t.spans == nil {
		return nil
	}
	return t.spans.snapshot()
}

// SpansDropped returns how many spans the ring has overwritten since
// the tracer was created — the trace-loss counter exported on
// /metrics.
func (t *Tracer) SpansDropped() uint64 {
	if t == nil || t.spans == nil {
		return 0
	}
	return t.spans.dropped()
}

// EventsDropped is the event-ring counterpart of SpansDropped: events
// overwritten by ticket overrun since the tracer was created.
func (t *Tracer) EventsDropped() uint64 {
	if t == nil || t.ring == nil {
		return 0
	}
	return t.ring.dropped()
}
