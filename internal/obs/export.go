package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// Chrome-trace-event exporter: renders a span snapshot in the Trace
// Event Format consumed by Perfetto (ui.perfetto.dev) and
// chrome://tracing. Each span becomes a "X" (complete) event on a
// per-kind lane, and every parent→child edge becomes an "s"/"f" flow
// pair, so a durable commit renders as an arrow chain client-rpc →
// server-op → engine-commit → commit-batch → device-sync.
//
// The output is a plain JSON object {"traceEvents": [...]}, written
// incrementally — no intermediate per-event structs — so dumping a
// 4096-span ring from a flight-recorder trigger is cheap.

// chromeTracePID is the synthetic process id of the exported timeline;
// lanes (tids) are span kinds.
const chromeTracePID = 1

// WriteChromeTrace writes spans as Chrome trace-event JSON. Spans is a
// Tracer.Spans snapshot (any order; IDs resolve flows). Kind lanes are
// named with thread_name metadata so Perfetto shows readable rows.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`)
	first := true
	comma := func() {
		if !first {
			bw.WriteByte(',')
		}
		first = false
	}

	// Lane metadata: one named row per span kind present.
	seenKind := map[SpanKind]bool{}
	byID := make(map[uint64]*Span, len(spans))
	for i := range spans {
		s := &spans[i]
		byID[s.ID] = s
		if !seenKind[s.Kind] {
			seenKind[s.Kind] = true
			comma()
			fmt.Fprintf(bw, `{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
				chromeTracePID, int(s.Kind), strconv.Quote(s.Kind.String()))
			// thread_sort_index keeps lanes in causal order (client at
			// the top, device sync at the bottom).
			comma()
			fmt.Fprintf(bw, `{"ph":"M","pid":%d,"tid":%d,"name":"thread_sort_index","args":{"sort_index":%d}}`,
				chromeTracePID, int(s.Kind), int(s.Kind))
		}
	}

	for i := range spans {
		s := &spans[i]
		ts := float64(s.Start) / 1e3 // µs
		dur := float64(s.Dur) / 1e3
		if dur <= 0 {
			dur = 0.001 // zero-width slices are invisible; give them 1ns
		}
		comma()
		fmt.Fprintf(bw,
			`{"ph":"X","pid":%d,"tid":%d,"name":%s,"cat":"aru","ts":%.3f,"dur":%.3f,"args":{"trace":"%x","span":"%x","parent":"%x","aru":%d,"arg1":%d,"arg2":%d}}`,
			chromeTracePID, int(s.Kind), strconv.Quote(s.Kind.String()),
			ts, dur, s.Trace, s.ID, s.Parent, s.ARU, s.Arg1, s.Arg2)
	}

	// Flow arrows for every parent edge whose parent survived in the
	// snapshot. The flow id is the child span id (unique per edge).
	for i := range spans {
		s := &spans[i]
		if s.Parent == 0 {
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			continue
		}
		comma()
		fmt.Fprintf(bw, `{"ph":"s","pid":%d,"tid":%d,"name":"causes","cat":"aru","id":%d,"ts":%.3f}`,
			chromeTracePID, int(p.Kind), s.ID, float64(p.Start)/1e3)
		comma()
		fmt.Fprintf(bw, `{"ph":"f","bp":"e","pid":%d,"tid":%d,"name":"causes","cat":"aru","id":%d,"ts":%.3f}`,
			chromeTracePID, int(s.Kind), s.ID, float64(s.Start)/1e3)
	}

	// Batch-causality arrows: a commit-durable span names its batch in
	// Arg1 (the batch lives on its own trace, so there is no parent
	// edge), and the arrow makes "every durable ack names its sync"
	// visible as commit-durable → commit-batch. Flow ids continue past
	// the span-id space via the high bit to stay unique.
	batchByID := map[uint64]*Span{}
	for i := range spans {
		if s := &spans[i]; s.Kind == SpanCommitBatch {
			batchByID[s.Arg1] = s
		}
	}
	for i := range spans {
		s := &spans[i]
		if s.Kind != SpanCommitDurable || s.Arg1 == 0 {
			continue
		}
		b, ok := batchByID[s.Arg1]
		if !ok {
			continue
		}
		flowID := s.ID | (1 << 63)
		comma()
		fmt.Fprintf(bw, `{"ph":"s","pid":%d,"tid":%d,"name":"durable-in-batch","cat":"aru","id":%d,"ts":%.3f}`,
			chromeTracePID, int(s.Kind), flowID, float64(s.Start)/1e3)
		comma()
		fmt.Fprintf(bw, `{"ph":"f","bp":"e","pid":%d,"tid":%d,"name":"durable-in-batch","cat":"aru","id":%d,"ts":%.3f}`,
			chromeTracePID, int(b.Kind), flowID, float64(b.Start)/1e3)
	}

	bw.WriteString("]}\n")
	return bw.Flush()
}

// TraceHandler serves the tracer's current span snapshot as Chrome
// trace-event JSON (the /debug/trace endpoint). A nil or span-disabled
// tracer serves an empty (still loadable) trace.
func TraceHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="aru-trace.json"`)
		_ = WriteChromeTrace(w, t.Spans())
	})
}
