package obs

// Allocation-budget gates for the observability layer (see
// internal/alloctest): with a tracer attached, emitting an event and
// observing a latency are a few atomic operations — no allocations —
// and the periodic snapshot path (SnapshotInto / HistogramsInto)
// reuses the caller's bucket backing, so a scraper polling /metrics
// mid-soak does not perturb the engine's allocation profile.

import (
	"testing"
	"time"

	"aru/internal/alloctest"
)

func TestAllocsEmitObserve(t *testing.T) {
	tr := New(Config{RingSize: 1024})
	op := func() {
		tr.Emit(EvWrite, 1, 2, 3)
		tr.Observe(HistWrite, 42*time.Microsecond)
	}
	op()
	alloctest.Check(t, "emit+observe", 0, 500, op)
}

func TestAllocsHistogramsInto(t *testing.T) {
	tr := New(Config{RingSize: -1})
	for i := 0; i < 1000; i++ {
		tr.Observe(HistWrite, time.Duration(i)*time.Microsecond)
		tr.Observe(HistCommitDurable, time.Duration(i)*time.Nanosecond)
	}
	scratch := tr.HistogramsInto(nil) // warm: allocate snapshots once
	op := func() {
		scratch = tr.HistogramsInto(scratch)
	}
	alloctest.Check(t, "HistogramsInto", 0, 200, op)
	if len(scratch) != int(numHists) {
		t.Fatalf("snapshot has %d histograms, want %d", len(scratch), numHists)
	}
}
