package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"aru/internal/alloctest"
)

// serveOnce spins up h, GETs it once and returns the body.
func serveOnce(t *testing.T, h http.Handler) string {
	t.Helper()
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return string(body)
}

func TestSpanRingBasic(t *testing.T) {
	tr := New(Config{RingSize: -1, SpanRingSize: 64})
	if !tr.SpanEnabled() {
		t.Fatal("SpanEnabled = false with a span ring configured")
	}
	trace := tr.NextID()
	root := tr.NextID()
	child := tr.NextID()
	if trace == 0 || root == 0 || child == 0 || root == child {
		t.Fatalf("NextID gave trace=%d root=%d child=%d", trace, root, child)
	}
	tr.EmitSpan(Span{Trace: trace, ID: root, Kind: SpanEngineCommit, Start: 10, Dur: 5, ARU: 7, Arg1: 3})
	tr.EmitSpan(Span{Trace: trace, ID: child, Parent: root, Kind: SpanCommitDurable, Start: 12, Dur: 9, ARU: 7, Arg1: 1, Arg2: 2})
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Seq >= spans[1].Seq {
		t.Fatalf("spans out of Seq order: %d then %d", spans[0].Seq, spans[1].Seq)
	}
	got := spans[1]
	if got.Trace != trace || got.ID != child || got.Parent != root ||
		got.Kind != SpanCommitDurable || got.Start != 12 || got.Dur != 9 ||
		got.ARU != 7 || got.Arg1 != 1 || got.Arg2 != 2 {
		t.Fatalf("span round-trip mismatch: %+v", got)
	}
	if tr.SpansDropped() != 0 {
		t.Fatalf("SpansDropped = %d before any wraparound", tr.SpansDropped())
	}
}

func TestSpanRingDisabled(t *testing.T) {
	tr := New(Config{RingSize: -1, SpanRingSize: -1})
	if tr.SpanEnabled() {
		t.Fatal("SpanEnabled = true with spans disabled")
	}
	tr.EmitSpan(Span{Trace: 1, ID: 2, Kind: SpanClientRPC}) // must not panic
	if got := tr.Spans(); got != nil {
		t.Fatalf("Spans() = %v on a disabled ring", got)
	}
	if tr.NextID() == 0 {
		t.Fatal("NextID = 0 on a span-disabled tracer (ids must still flow for wire propagation)")
	}
	var nilT *Tracer
	nilT.EmitSpan(Span{})
	if nilT.NextID() != 0 || nilT.SpanEnabled() || nilT.Spans() != nil || nilT.SpansDropped() != 0 {
		t.Fatal("nil tracer span methods are not inert")
	}
}

// TestRingWraparoundDroppedCount is the regression test for the
// dropped-event accounting (satellite: trace loss must be visible).
// Overrunning the ring must (a) report exactly ticket−capacity drops,
// (b) keep the snapshot ordered by Seq with the *newest* events
// surviving, for both the event ring and the span ring.
func TestRingWraparoundDroppedCount(t *testing.T) {
	const capacity = 16 // newRing minimum
	tr := New(Config{RingSize: capacity, SpanRingSize: capacity})
	const emitted = capacity*3 + 5
	for i := 1; i <= emitted; i++ {
		tr.Emit(EvWrite, uint64(i), 0, 0)
		tr.EmitSpan(Span{Trace: 1, ID: uint64(i), Kind: SpanSegFlush})
	}
	wantDropped := uint64(emitted - capacity)
	if got := tr.EventsDropped(); got != wantDropped {
		t.Errorf("EventsDropped = %d, want %d", got, wantDropped)
	}
	if got := tr.SpansDropped(); got != wantDropped {
		t.Errorf("SpansDropped = %d, want %d", got, wantDropped)
	}

	events := tr.Events()
	if len(events) != capacity {
		t.Fatalf("got %d events after wraparound, want %d", len(events), capacity)
	}
	for i, e := range events {
		wantSeq := uint64(emitted - capacity + 1 + i)
		if e.Seq != wantSeq {
			t.Fatalf("event[%d].Seq = %d, want %d (newest must survive, ordered)", i, e.Seq, wantSeq)
		}
		if e.ARU != wantSeq {
			t.Fatalf("event[%d] payload %d does not match its ticket %d", i, e.ARU, wantSeq)
		}
	}
	spans := tr.Spans()
	if len(spans) != capacity {
		t.Fatalf("got %d spans after wraparound, want %d", len(spans), capacity)
	}
	for i, s := range spans {
		wantSeq := uint64(emitted - capacity + 1 + i)
		if s.Seq != wantSeq || s.ID != wantSeq {
			t.Fatalf("span[%d] = seq %d id %d, want %d", i, s.Seq, s.ID, wantSeq)
		}
	}
}

// TestRingDroppedCounterOnMetrics pins the /metrics exposition of the
// trace-loss counters.
func TestRingDroppedCounterOnMetrics(t *testing.T) {
	tr := New(Config{RingSize: 16, SpanRingSize: 16})
	for i := 0; i < 20; i++ {
		tr.Emit(EvWrite, 1, 2, 3)
	}
	body := serveOnce(t, Handler(HandlerOptions{Tracer: tr}))
	for _, want := range []string{
		"aru_trace_events_dropped_total 4",
		"aru_trace_spans_dropped_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n%s", want, body)
		}
	}
}

func TestSpanRingConcurrent(t *testing.T) {
	tr := New(Config{RingSize: -1, SpanRingSize: 256})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tr.EmitSpan(Span{Trace: uint64(g + 1), ID: tr.NextID(), Kind: SpanClientRPC, Start: time.Duration(i)})
			}
		}(g)
	}
	deadline := time.After(50 * time.Millisecond)
	for {
		select {
		case <-deadline:
			close(stop)
			wg.Wait()
			return
		default:
		}
		spans := tr.Spans()
		for i := 1; i < len(spans); i++ {
			if spans[i-1].Seq >= spans[i].Seq {
				t.Fatalf("snapshot out of order at %d: %d then %d", i, spans[i-1].Seq, spans[i].Seq)
			}
		}
	}
}

func TestAllocsEmitSpan(t *testing.T) {
	tr := New(Config{RingSize: -1, SpanRingSize: 1024})
	op := func() {
		tr.EmitSpan(Span{Trace: 1, ID: tr.NextID(), Parent: 2, Kind: SpanEngineCommit, Start: 5, Dur: 7, ARU: 3})
	}
	op()
	alloctest.Check(t, "emit span", 0, 500, op)
}

// TestAllocsSpanDisabledPath gates the cost of tracing being OFF: a
// span-disabled tracer (and a nil tracer) must emit for free.
func TestAllocsSpanDisabledPath(t *testing.T) {
	tr := New(Config{RingSize: -1, SpanRingSize: -1})
	var nilT *Tracer
	op := func() {
		tr.EmitSpan(Span{Trace: 1, ID: 2, Kind: SpanEngineCommit})
		nilT.EmitSpan(Span{Trace: 1, ID: 2, Kind: SpanEngineCommit})
	}
	op()
	alloctest.Check(t, "disabled span emit", 0, 500, op)
}

func TestChromeTraceExport(t *testing.T) {
	tr := New(Config{RingSize: -1, SpanRingSize: 64})
	trace := tr.NextID()
	rpc, op, commit, batch, sync := tr.NextID(), tr.NextID(), tr.NextID(), tr.NextID(), tr.NextID()
	tr.EmitSpan(Span{Trace: trace, ID: rpc, Kind: SpanClientRPC, Start: 0, Dur: 100})
	tr.EmitSpan(Span{Trace: trace, ID: op, Parent: rpc, Kind: SpanServerOp, Start: 10, Dur: 80})
	tr.EmitSpan(Span{Trace: trace, ID: commit, Parent: op, Kind: SpanEngineCommit, Start: 20, Dur: 30})
	tr.EmitSpan(Span{Trace: trace, ID: batch, Kind: SpanCommitBatch, Start: 50, Dur: 40, Arg1: 1})
	tr.EmitSpan(Span{Trace: trace, ID: sync, Parent: batch, Kind: SpanDeviceSync, Start: 60, Dur: 20, Arg1: 1})

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Spans()); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	var complete, meta, flowS, flowF int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			complete++
		case "M":
			meta++
		case "s":
			flowS++
		case "f":
			flowF++
		}
	}
	if complete != 5 {
		t.Errorf("got %d complete events, want 5", complete)
	}
	if flowS != 3 || flowF != 3 {
		t.Errorf("got %d/%d flow start/finish events, want 3/3 (rpc→op, op→commit, batch→sync)", flowS, flowF)
	}
	if meta == 0 {
		t.Error("no thread_name metadata events")
	}
}

func TestTraceHandlerEmptyTracer(t *testing.T) {
	// /debug/trace must serve loadable JSON even with no tracer.
	body := serveOnce(t, TraceHandler(nil))
	var doc struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v\n%s", err, body)
	}
	if len(doc.TraceEvents) != 0 {
		t.Fatalf("empty tracer exported %d events", len(doc.TraceEvents))
	}
}

func TestFlightRecorder(t *testing.T) {
	tr := New(Config{RingSize: 64, SpanRingSize: 64})
	tr.Emit(EvWrite, 1, 2, 3)
	tr.EmitSpan(Span{Trace: 1, ID: 2, Kind: SpanCommitDurable, Arg1: 9, Arg2: 4})
	tr.Observe(HistWrite, time.Millisecond)

	fr := NewFlightRecorder(tr)
	fr.Dir = t.TempDir()
	path, err := fr.Dump("test")
	if err != nil {
		t.Fatalf("Dump: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read artifact: %v", err)
	}
	var d FlightDump
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if d.Reason != "test" || len(d.Spans) != 1 || len(d.Events) != 1 || len(d.Histograms) == 0 {
		t.Fatalf("artifact incomplete: reason=%q spans=%d events=%d hists=%d",
			d.Reason, len(d.Spans), len(d.Events), len(d.Histograms))
	}
	if d.Spans[0].Arg1 != 9 || d.Spans[0].Arg2 != 4 {
		t.Fatalf("span args did not survive the dump: %+v", d.Spans[0])
	}
	if fr.Dumps() != 1 {
		t.Fatalf("Dumps = %d, want 1", fr.Dumps())
	}
}

func TestFlightRecorderRateLimit(t *testing.T) {
	tr := New(Config{RingSize: -1, SpanRingSize: 16})
	fr := NewFlightRecorder(tr)
	fr.Dir = t.TempDir()
	fr.MinGap = time.Hour
	if p, err := fr.TryDump("first"); err != nil || p == "" {
		t.Fatalf("first TryDump suppressed: path=%q err=%v", p, err)
	}
	for i := 0; i < 5; i++ {
		if p, err := fr.TryDump("burst"); err != nil || p != "" {
			t.Fatalf("TryDump inside MinGap wrote %q (err=%v)", p, err)
		}
	}
	files, _ := filepath.Glob(filepath.Join(fr.Dir, "aru-flight-*.json"))
	if len(files) != 1 {
		t.Fatalf("rate limit leaked: %d artifacts", len(files))
	}
	if fr.Dumps() != 1 {
		t.Fatalf("Dumps = %d, want 1", fr.Dumps())
	}
}

func TestFlightRecorderOnPanic(t *testing.T) {
	tr := New(Config{RingSize: -1, SpanRingSize: 16})
	tr.EmitSpan(Span{Trace: 1, ID: 1, Kind: SpanEngineCommit})
	fr := NewFlightRecorder(tr)
	fr.Dir = t.TempDir()
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Error("OnPanic swallowed the panic")
			}
		}()
		defer fr.OnPanic()
		panic(fmt.Errorf("boom"))
	}()
	files, _ := filepath.Glob(filepath.Join(fr.Dir, "aru-flight-*.json"))
	if len(files) != 1 {
		t.Fatalf("panic left %d artifacts, want 1", len(files))
	}
	raw, _ := os.ReadFile(files[0])
	if !strings.Contains(string(raw), "panic: boom") {
		t.Fatalf("artifact does not name the panic:\n%s", raw)
	}
}
