//go:build !race

package alloctest

// RaceEnabled reports whether the binary was built with the race
// detector, whose instrumentation allocates and would fail any
// allocation budget.
const RaceEnabled = false
