// Package alloctest enforces allocations-per-operation budgets on the
// engine's hot paths. A budget is an executable contract: the gate
// tests (named TestAllocs*) measure a steady-state operation with
// testing.AllocsPerRun and fail when it allocates more than its
// budget, so an accidental allocation regression fails `go test`
// instead of silently eroding throughput.
//
// Budgets are measured end to end across all goroutines (AllocsPerRun
// counts every malloc in the process), so a budget on the network
// write path covers the client encoder, the server dispatch and the
// response path together.
//
// The gates skip themselves under the race detector: race
// instrumentation adds allocations of its own, so the numbers are
// only meaningful in a plain build. CI runs them in a dedicated
// allocs-gate job without -race.
package alloctest

import "testing"

// Check measures op's steady-state allocation count as the average of
// runs executions and fails t if it exceeds budget. op may batch
// several logical operations; budget then covers the whole batch.
func Check(t *testing.T, name string, budget float64, runs int, op func()) {
	t.Helper()
	if RaceEnabled {
		t.Skip("allocation budgets are measured without the race detector")
	}
	got := testing.AllocsPerRun(runs, op)
	t.Logf("%s: %.1f allocs/op (budget %.0f)", name, got, budget)
	if got > budget {
		t.Errorf("%s allocates %.1f per op, budget is %.0f — a new allocation crept onto a hot path", name, got, budget)
	}
}
