// Package linearize decides whether a history of concurrent,
// completed operations is linearizable against a sequential
// specification, and shrinks failing histories to minimal
// counterexamples.
//
// The checker is the Wing & Gong (1993) exhaustive search with Lowe's
// memoization: at every step only *minimal* operations — those whose
// call precedes the earliest pending return — are candidates for the
// next linearization point, and configurations (set of linearized
// operations, specification state) already proven dead are never
// revisited. The search is exponential in the worst case but the
// pruning makes the histories a test harness produces (tens of
// operations, a handful of concurrent clients) check in microseconds.
//
// A history is a slice of Op: each operation carries its client, its
// call and return timestamps on one shared logical clock, and its
// input/output values. The checker requires every operation to be
// complete (Call < Return) and timestamps to be distinct across
// entries; histories taken from a live system get this for free by
// drawing both stamps from one atomic counter.
package linearize

import "sort"

// Op is one completed operation of a concurrent history.
type Op struct {
	// Client identifies the issuing client; it is not used by the
	// checker (one client's ops are already ordered by their stamps)
	// but kept for counterexample readability.
	Client int
	// Call and Return are the operation's invocation and response
	// times on a single logical clock, Call < Return. Two operations
	// overlap — and may linearize in either order — exactly when
	// neither returns before the other is called.
	Call, Return int64
	// Input is the operation's argument (nil for a pure observer, by
	// the convention of the specs in this package).
	Input any
	// Output is the value the operation returned.
	Output any
}

// Spec is a sequential specification: a state machine that accepts or
// rejects one operation at a time.
type Spec interface {
	// Init returns the initial state.
	Init() any
	// Apply attempts in/out as the next sequential operation from
	// state, returning the successor state and whether the transition
	// is legal. It must not mutate state.
	Apply(state, in, out any) (any, bool)
	// Equal reports whether two states are indistinguishable.
	Equal(a, b any) bool
	// Hash returns a hash consistent with Equal, for memoization.
	Hash(state any) uint64
}

// Result is the outcome of a check.
type Result struct {
	// Ok reports whether the history is linearizable.
	Ok bool
	// Order is a witness linearization (indices into the checked
	// history, in linearization order) when Ok.
	Order []int
	// Depth is the largest number of operations any explored branch
	// managed to linearize; on failure it points at how far the search
	// got before every extension died.
	Depth int
}

// entry is one end of an operation on the doubly linked search list.
type entry struct {
	op         int
	time       int64
	match      *entry // call entry -> its return entry; nil on returns
	prev, next *entry
}

func (e *entry) lift() {
	e.prev.next = e.next
	if e.next != nil {
		e.next.prev = e.prev
	}
	m := e.match
	m.prev.next = m.next
	if m.next != nil {
		m.next.prev = m.prev
	}
}

func (e *entry) unlift() {
	m := e.match
	m.prev.next = m
	if m.next != nil {
		m.next.prev = m
	}
	e.prev.next = e
	if e.next != nil {
		e.next.prev = e
	}
}

// bitset is a fixed-capacity set of operation indices.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }
func (b bitset) set(i int)   { b[i/64] |= 1 << (i % 64) }
func (b bitset) clear(i int) { b[i/64] &^= 1 << (i % 64) }
func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}
func (b bitset) equal(o bitset) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}
func (b bitset) hash() uint64 {
	h := uint64(1469598103934665603)
	for _, w := range b {
		h ^= w
		h *= 1099511628211
	}
	return h
}

// memoEntry is one dead configuration: this set of linearized ops in
// this state has been fully explored.
type memoEntry struct {
	done  bitset
	state any
}

// Check reports whether ops is a linearizable history of spec. The
// history must contain only completed operations with distinct
// timestamps; Check panics on an operation with Call >= Return.
func Check(spec Spec, ops []Op) Result {
	n := len(ops)
	if n == 0 {
		return Result{Ok: true}
	}
	// Build the time-ordered entry list under a head sentinel.
	entries := make([]*entry, 0, 2*n)
	for i, op := range ops {
		if op.Call >= op.Return {
			panic("linearize: incomplete operation in history")
		}
		call := &entry{op: i, time: op.Call}
		ret := &entry{op: i, time: op.Return}
		call.match = ret
		entries = append(entries, call, ret)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].time < entries[j].time })
	head := &entry{op: -1, time: -1 << 62}
	prev := head
	for _, e := range entries {
		prev.next = e
		e.prev = prev
		prev = e
	}

	type frame struct {
		e         *entry
		prevState any
	}
	var (
		stack []frame
		state = spec.Init()
		done  = newBitset(n)
		memo  = make(map[uint64][]memoEntry)
		depth = 0
		seen  = func(b bitset, s any) bool {
			h := b.hash() ^ spec.Hash(s)
			for _, m := range memo[h] {
				if m.done.equal(b) && spec.Equal(m.state, s) {
					return true
				}
			}
			memo[h] = append(memo[h], memoEntry{done: b.clone(), state: s})
			return false
		}
		cursor = head.next
	)
	for head.next != nil {
		if cursor == nil || cursor.match == nil {
			// Reached a pending return (or the end of the list): no
			// minimal operation extends this branch. Backtrack.
			if len(stack) == 0 {
				return Result{Ok: false, Depth: depth}
			}
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			state = f.prevState
			done.clear(f.e.op)
			f.e.unlift()
			cursor = f.e.next
			continue
		}
		op := ops[cursor.op]
		if next, ok := spec.Apply(state, op.Input, op.Output); ok {
			done.set(cursor.op)
			if !seen(done, next) {
				stack = append(stack, frame{e: cursor, prevState: state})
				state = next
				cursor.lift()
				if len(stack) > depth {
					depth = len(stack)
				}
				cursor = head.next
				continue
			}
			done.clear(cursor.op)
		}
		cursor = cursor.next
	}
	order := make([]int, len(stack))
	for i, f := range stack {
		order[i] = f.e.op
	}
	return Result{Ok: true, Order: order, Depth: depth}
}

// Shrink reduces a non-linearizable history to a locally minimal
// failing sub-history: first whole clients, then single operations are
// removed greedily as long as the remainder still fails the check. It
// returns nil if ops is already linearizable. The returned slice is a
// fresh copy; timestamps are preserved, so the counterexample replays
// under Check directly.
func Shrink(spec Spec, ops []Op) []Op {
	if Check(spec, ops).Ok {
		return nil
	}
	cur := append([]Op(nil), ops...)

	without := func(h []Op, drop func(Op) bool) []Op {
		out := make([]Op, 0, len(h))
		for _, op := range h {
			if !drop(op) {
				out = append(out, op)
			}
		}
		return out
	}

	// Pass 1: drop entire clients.
	clients := map[int]bool{}
	for _, op := range cur {
		clients[op.Client] = true
	}
	ids := make([]int, 0, len(clients))
	for c := range clients {
		ids = append(ids, c)
	}
	sort.Ints(ids)
	for _, c := range ids {
		cand := without(cur, func(op Op) bool { return op.Client == c })
		if len(cand) < len(cur) && !Check(spec, cand).Ok {
			cur = cand
		}
	}

	// Pass 2: drop single operations to a fixpoint.
	for again := true; again; {
		again = false
		for i := 0; i < len(cur); i++ {
			cand := append(append([]Op(nil), cur[:i]...), cur[i+1:]...)
			if !Check(spec, cand).Ok {
				cur = cand
				again = true
				i--
			}
		}
	}
	return cur
}

// RegisterSpec is the sequential specification of a single atomic
// register holding an int64: an operation with a non-nil Input is a
// write of Input.(int64); one with a nil Input is a read that returned
// Output.(int64). Reads are legal exactly when they return the latest
// written value (or Initial before any write).
type RegisterSpec struct{ Initial int64 }

// Init returns the initial register value.
func (r RegisterSpec) Init() any { return r.Initial }

// Apply implements Spec.
func (r RegisterSpec) Apply(state, in, out any) (any, bool) {
	if in != nil {
		return in.(int64), true
	}
	return state, out.(int64) == state.(int64)
}

// Equal implements Spec.
func (RegisterSpec) Equal(a, b any) bool { return a.(int64) == b.(int64) }

// Hash implements Spec.
func (RegisterSpec) Hash(state any) uint64 {
	return uint64(state.(int64)) * 0x9e3779b97f4a7c15
}
