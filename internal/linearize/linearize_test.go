package linearize

import (
	"math/rand"
	"testing"
)

func w(client int, call, ret, v int64) Op {
	return Op{Client: client, Call: call, Return: ret, Input: v}
}

func r(client int, call, ret, v int64) Op {
	return Op{Client: client, Call: call, Return: ret, Output: v}
}

// TestSequentialHistory checks the degenerate case: non-overlapping
// operations are linearizable iff they are legal in real-time order.
func TestSequentialHistory(t *testing.T) {
	spec := RegisterSpec{}
	good := []Op{w(0, 1, 2, 7), r(1, 3, 4, 7), w(0, 5, 6, 9), r(1, 7, 8, 9)}
	if res := Check(spec, good); !res.Ok {
		t.Fatalf("sequential legal history rejected (depth %d)", res.Depth)
	}
	bad := []Op{w(0, 1, 2, 7), r(1, 3, 4, 9)}
	if Check(spec, bad).Ok {
		t.Fatal("read of a never-current value accepted")
	}
}

// TestOverlapOrdersBothWays checks that a read overlapping a write may
// observe either the old or the new value, but a read strictly after
// the write's return may not observe the old one.
func TestOverlapOrdersBothWays(t *testing.T) {
	spec := RegisterSpec{}
	// Write 5 over [2,6]; concurrent reads of both 0 and 5.
	h := []Op{w(0, 2, 6, 5), r(1, 3, 4, 0), r(2, 1, 5, 5)}
	if !Check(spec, h).Ok {
		t.Fatal("legal overlapping history rejected")
	}
	// Read called after the write returned must see 5.
	stale := []Op{w(0, 1, 2, 5), r(1, 3, 4, 0)}
	if Check(spec, stale).Ok {
		t.Fatal("stale read after write completion accepted")
	}
}

// TestWitnessOrderReplays re-applies the returned witness
// linearization sequentially and checks it is legal and complete.
func TestWitnessOrderReplays(t *testing.T) {
	spec := RegisterSpec{}
	h := []Op{
		w(0, 1, 10, 1), w(1, 2, 9, 2), r(2, 3, 8, 1),
		r(3, 4, 7, 2), r(2, 11, 12, 2),
	}
	res := Check(spec, h)
	if !res.Ok {
		t.Fatal("history should be linearizable")
	}
	if len(res.Order) != len(h) {
		t.Fatalf("witness covers %d of %d ops", len(res.Order), len(h))
	}
	state := spec.Init()
	seen := map[int]bool{}
	for _, i := range res.Order {
		if seen[i] {
			t.Fatalf("op %d appears twice in witness", i)
		}
		seen[i] = true
		next, ok := spec.Apply(state, h[i].Input, h[i].Output)
		if !ok {
			t.Fatalf("witness step %d illegal", i)
		}
		state = next
	}
}

// TestConcurrentReadsCannotCross checks the classic non-linearizable
// shape: two sequential reads observing two writes in opposite orders.
func TestConcurrentReadsCannotCross(t *testing.T) {
	spec := RegisterSpec{}
	h := []Op{
		w(0, 1, 20, 1), w(1, 2, 19, 2),
		// Client 2 reads 1 then 2: fine. Client 3 reads 2 then 1
		// strictly after: the register would have to go 2 -> 1 -> 2.
		r(2, 3, 4, 1), r(2, 5, 6, 2),
		r(3, 7, 8, 2), r(3, 9, 10, 1), r(2, 11, 12, 2),
	}
	if Check(spec, h).Ok {
		t.Fatal("value oscillation across sequential readers accepted")
	}
}

// TestPruningHandlesWideHistories exercises the memoized search on a
// history wide enough that the unpruned search space (14 concurrent
// ops) would be intractable to enumerate naively per-branch.
func TestPruningHandlesWideHistories(t *testing.T) {
	spec := RegisterSpec{}
	var h []Op
	// 7 writers of the same value and 7 readers of it, all overlapping.
	for i := 0; i < 7; i++ {
		h = append(h, Op{Client: i, Call: int64(i), Return: int64(100 + i), Input: int64(42)})
		h = append(h, Op{Client: 7 + i, Call: int64(10 + i), Return: int64(110 + i), Output: int64(42)})
	}
	if !Check(spec, h).Ok {
		t.Fatal("wide legal history rejected")
	}
}

// TestRandomLegalHistories cross-validates the checker against
// histories generated from a known linearization: random overlap
// widths around a legal sequential execution must always pass.
func TestRandomLegalHistories(t *testing.T) {
	spec := RegisterSpec{}
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var (
			h     []Op
			clock int64
			cur   int64
		)
		for i := 0; i < 12; i++ {
			// Linearization point at `clock`; call/return jitter around it.
			call := clock - rng.Int63n(3)
			ret := clock + 1 + rng.Int63n(3)
			// Keep stamps distinct by spacing the clock.
			call, ret = call*16+int64(i), ret*16+int64(i)+8
			if rng.Intn(2) == 0 {
				cur = rng.Int63n(5)
				h = append(h, Op{Client: i % 4, Call: call, Return: ret, Input: cur})
			} else {
				h = append(h, Op{Client: i % 4, Call: call, Return: ret, Output: cur})
			}
			clock += 4
		}
		if res := Check(spec, h); !res.Ok {
			t.Fatalf("seed %d: legal history rejected (depth %d)", seed, res.Depth)
		}
	}
}

// TestShrinkMinimizes checks that shrinking a bloated failing history
// yields a minimal core: one write and one stale read.
func TestShrinkMinimizes(t *testing.T) {
	spec := RegisterSpec{}
	var h []Op
	// Noise: three clients doing legal traffic.
	for i := int64(0); i < 6; i++ {
		h = append(h, w(0, 100+4*i, 102+4*i, i+1))
		h = append(h, r(1, 103+4*i, 104+4*i, i+1))
	}
	// The bug: client 2 reads a value the register never held again
	// after a completed overwrite.
	h = append(h, w(3, 200, 201, 77))
	h = append(h, r(2, 202, 203, 6)) // 6 was overwritten by 77
	if Check(spec, h).Ok {
		t.Fatal("constructed history should fail")
	}
	min := Shrink(spec, h)
	if min == nil {
		t.Fatal("Shrink returned nil for a failing history")
	}
	if Check(spec, min).Ok {
		t.Fatal("shrunk history no longer fails")
	}
	if len(min) > 2 {
		t.Fatalf("shrunk history has %d ops, want <= 2: %+v", len(min), min)
	}
	if Shrink(spec, []Op{w(0, 1, 2, 1), r(0, 3, 4, 1)}) != nil {
		t.Fatal("Shrink of a passing history must return nil")
	}
}
