package linearize_test

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aru/internal/core"
	"aru/internal/disk"
	"aru/internal/linearize"
	"aru/internal/seg"
)

// TestMain is the leaked-snapshot detector: any test path that
// acquires a Snapshot handle and exits without releasing it pins an
// epoch (and everything that epoch retired) forever, which no test
// here is entitled to do.
func TestMain(m *testing.M) {
	code := m.Run()
	if n := core.LiveSnapshots(); n != 0 {
		fmt.Fprintf(os.Stderr, "FAIL: %d snapshot handles leaked by the test suite\n", n)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

func historyLayout() seg.Layout {
	return seg.Layout{
		BlockSize: 512,
		SegBytes:  4096,
		NumSegs:   32,
		MaxBlocks: 128,
		MaxLists:  16,
	}
}

// payload encodes register value v into a full block: the value in the
// first 8 bytes and a v-dependent fill after it, so a torn or
// misdirected block read cannot masquerade as a clean value.
func payload(bs int, v int64) []byte {
	p := make([]byte, bs)
	binary.LittleEndian.PutUint64(p, uint64(v))
	for i := 8; i < bs; i++ {
		p[i] = byte(int64(i)*31 ^ v*131)
	}
	return p
}

// decode returns the register value a block holds, or -1 if the block
// is not a coherent payload of any value.
func decode(p []byte) int64 {
	v := int64(binary.LittleEndian.Uint64(p))
	for i := 8; i < len(p); i++ {
		if p[i] != byte(int64(i)*31^v*131) {
			return -1
		}
	}
	return v
}

// historyConfig sizes one generated history.
type historyConfig struct {
	readers, committers  int
	commitsPer, readsPer int
	maxReads             int // per-reader recording cap
	blocks               int
	commitPause          time.Duration // post-commit dwell, widens read overlap
	staleHeadEvery       int           // Params.UnsafeStaleHeadEvery passthrough
}

// runHistory executes one seeded concurrent history against a fresh
// engine and returns it: committers serialize among themselves (ARUs
// provide failure atomicity, not write-write isolation, so callers own
// block-level coordination — see DESIGN.md §16) and write the same
// value to every register block inside one ARU; readers pin a snapshot
// and read all blocks through it. A reader that observes two different
// values inside one snapshot reports the impossible value -1, which no
// writer ever writes, so atomicity violations fail the register check
// exactly like stale reads do.
func runHistory(t *testing.T, seed int64, cfg historyConfig) []linearize.Op {
	t.Helper()
	lay := historyLayout()
	p := core.Params{Layout: lay, UnsafeStaleHeadEvery: cfg.staleHeadEvery}
	d, err := core.Format(disk.NewMem(lay.DiskBytes()), p)
	if err != nil {
		t.Fatalf("seed %d: format: %v", seed, err)
	}
	defer d.Close()

	lst, err := d.NewList(seg.SimpleARU)
	if err != nil {
		t.Fatalf("seed %d: new list: %v", seed, err)
	}
	blocks := make([]core.BlockID, cfg.blocks)
	for i := range blocks {
		if blocks[i], err = d.NewBlock(seg.SimpleARU, lst, core.NilBlock); err != nil {
			t.Fatalf("seed %d: new block: %v", seed, err)
		}
		if err := d.Write(seg.SimpleARU, blocks[i], payload(lay.BlockSize, 0)); err != nil {
			t.Fatalf("seed %d: init write: %v", seed, err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatalf("seed %d: init flush: %v", seed, err)
	}

	var (
		clock    atomic.Int64
		mu       sync.Mutex
		history  []linearize.Op
		commitMu sync.Mutex
		wg       sync.WaitGroup
	)
	record := func(op linearize.Op) {
		mu.Lock()
		history = append(history, op)
		mu.Unlock()
	}
	done := make(chan struct{})

	var committers sync.WaitGroup
	for c := 0; c < cfg.committers; c++ {
		wg.Add(1)
		committers.Add(1)
		go func(c int) {
			defer wg.Done()
			defer committers.Done()
			for i := 0; i < cfg.commitsPer; i++ {
				v := int64(seed)*1_000_000 + int64(c)*1_000 + int64(i) + 1
				call := clock.Add(1)
				commitMu.Lock()
				aru, err := d.BeginARU()
				if err == nil {
					for _, b := range blocks {
						if werr := d.Write(aru, b, payload(lay.BlockSize, v)); werr != nil {
							err = werr
							break
						}
					}
					if err == nil {
						err = d.EndARU(aru)
					} else {
						d.AbortARU(aru)
					}
				}
				commitMu.Unlock()
				ret := clock.Add(1)
				if err != nil {
					t.Errorf("seed %d: committer %d: %v", seed, c, err)
					return
				}
				record(linearize.Op{Client: c, Call: call, Return: ret, Input: v})
				if cfg.commitPause > 0 {
					// Dwell inside the post-commit window so readers
					// overlap it: this is where a dropped publish leaves
					// the head stale.
					time.Sleep(cfg.commitPause)
				}
			}
		}(c)
	}
	go func() { committers.Wait(); close(done) }()

	for r := 0; r < cfg.readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			buf := make([]byte, lay.BlockSize)
			for i := 0; i < cfg.maxReads; i++ {
				// Keep reading for as long as commits are in flight (so
				// every post-commit window is observed), but at least
				// readsPer times even if the committers finish first.
				if i >= cfg.readsPer {
					select {
					case <-done:
						return
					default:
					}
				}
				call := clock.Add(1)
				s, err := d.AcquireSnapshot()
				if err != nil {
					t.Errorf("seed %d: reader %d: acquire: %v", seed, r, err)
					return
				}
				v := int64(-1)
				for j, b := range blocks {
					if rerr := s.Read(seg.SimpleARU, b, buf); rerr != nil {
						t.Errorf("seed %d: reader %d: read: %v", seed, r, rerr)
						s.Release()
						return
					}
					got := decode(buf)
					if j == 0 {
						v = got
					} else if got != v {
						v = -1 // torn: two values inside one snapshot
						break
					}
				}
				s.Release()
				ret := clock.Add(1)
				record(linearize.Op{Client: cfg.committers + r, Call: call, Return: ret, Output: v})
				time.Sleep(20 * time.Microsecond)
			}
		}(r)
	}
	wg.Wait()
	return history
}

// TestLinearizableReads drives 8 snapshot readers against 4 committers
// over many seeded histories and requires every observed history to
// linearize against an atomic register: no reader may see a torn
// multi-block state, a stale value after a newer commit returned, or a
// value oscillation another reader contradicts.
func TestLinearizableReads(t *testing.T) {
	histories := 1000
	if testing.Short() {
		histories = 120
	}
	cfg := historyConfig{
		readers: 8, committers: 4,
		commitsPer: 3, readsPer: 4,
		maxReads: 64, blocks: 3,
		commitPause: 100 * time.Microsecond,
	}
	spec := linearize.RegisterSpec{}
	for seed := int64(1); seed <= int64(histories); seed++ {
		h := runHistory(t, seed, cfg)
		if t.Failed() {
			return
		}
		if res := linearize.Check(spec, h); !res.Ok {
			min := linearize.Shrink(spec, h)
			t.Fatalf("seed %d: history of %d ops not linearizable (search depth %d); shrunk counterexample: %+v",
				seed, len(h), res.Depth, min)
		}
	}
}

// TestStaleHeadBugCaught validates the checker against a deliberately
// broken engine: UnsafeStaleHeadEvery drops every 2nd epoch publish,
// so committed state lingers invisible and a reader can return a value
// that a completed commit already overwrote. The checker must find the
// violation within a bounded number of seeded histories and shrink it
// to a minimal read-sees-stale-value core.
func TestStaleHeadBugCaught(t *testing.T) {
	cfg := historyConfig{
		readers: 8, committers: 4,
		commitsPer: 3, readsPer: 4,
		maxReads: 64, blocks: 3,
		commitPause:    300 * time.Microsecond,
		staleHeadEvery: 2,
	}
	spec := linearize.RegisterSpec{}
	for seed := int64(1); seed <= 300; seed++ {
		h := runHistory(t, seed, cfg)
		if t.Failed() {
			return
		}
		res := linearize.Check(spec, h)
		if res.Ok {
			continue
		}
		min := linearize.Shrink(spec, h)
		if min == nil || linearize.Check(spec, min).Ok {
			t.Fatalf("seed %d: shrink lost the violation", seed)
		}
		if len(min) > 4 {
			t.Fatalf("seed %d: shrunk counterexample still has %d ops: %+v", seed, len(min), min)
		}
		t.Logf("seed %d: stale-head violation shrunk from %d to %d ops: %+v",
			seed, len(h), len(min), min)
		return
	}
	t.Fatal("stale-head bug not caught in 300 seeded histories")
}
