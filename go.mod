module aru

go 1.22
