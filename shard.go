package aru

import (
	"aru/internal/shard"
)

// ShardedDisk is an N-way sharded logical disk: one full LLD engine
// per device plus a coordinator log, presenting the ordinary LD
// surface. Block and list identifiers route deterministically to
// shards; an ARU that touches one shard commits on that engine's fast
// path, one that touches several commits with two-phase commit
// against the coordinator log (durable at EndARU return). See
// aru/internal/shard.
type ShardedDisk = shard.Disk

// ShardOptions configures a sharded disk; ShardOptions.Params applies
// to every shard engine.
type ShardOptions = shard.Options

// ShardedStats extends the engine counters with 2PC and per-shard
// detail; see (*ShardedDisk).ShardStats.
type ShardedStats = shard.Stats

// ShardedSnapshot is a pinned read-only cut of a sharded disk: one
// epoch per shard, validated against the 2PC apply window so a
// consistent cut never shows a cross-shard unit partially applied.
// Acquire one with (*ShardedDisk).AcquireSnapshot.
type ShardedSnapshot = shard.Snapshot

// A sharded disk serves the same surface as a single-engine disk —
// local programs and the network server use it interchangeably.
var (
	_ Interface  = (*ShardedDisk)(nil)
	_ NetBackend = (*ShardedDisk)(nil)
)

// Cross-shard errors, re-exported for errors.Is tests.
var (
	// ErrCrossShardMove rejects MoveBlock between lists on different
	// shards (a block's identity is bound to its shard).
	ErrCrossShardMove = shard.ErrCrossShardMove
	// ErrCoordFull reports a full coordinator log; Checkpoint reclaims
	// it.
	ErrCoordFull = shard.ErrCoordFull
)

// ShardCoordBytes returns the device capacity a coordinator log needs
// to hold the given number of commit records.
func ShardCoordBytes(records int) int64 { return shard.CoordBytes(records) }

// FormatSharded initializes devs (one per shard) and the coordinator
// device coord, returning a fresh sharded disk.
func FormatSharded(devs []Device, coord Device, o ShardOptions) (*ShardedDisk, error) {
	return shard.Format(devs, coord, o)
}

// OpenSharded mounts a sharded disk, running full multi-shard crash
// recovery: each shard recovers its log, and in-doubt cross-shard
// prepares are resolved against the coordinator log (commit record
// present → redo; absent → presumed abort, tracelessly).
func OpenSharded(devs []Device, coord Device, o ShardOptions) (*ShardedDisk, error) {
	d, _, err := shard.OpenReport(devs, coord, o)
	return d, err
}

// OpenShardedReport is OpenSharded plus each shard's recovery report.
func OpenShardedReport(devs []Device, coord Device, o ShardOptions) (*ShardedDisk, []RecoveryReport, error) {
	return shard.OpenReport(devs, coord, o)
}
