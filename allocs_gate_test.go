package aru_test

// Allocation-budget gates for the engine's hot paths (see
// internal/alloctest). Each test warms the engine's free lists, then
// measures the steady-state allocations of one operation and fails if
// it exceeds its budget. The budgets encode this PR's measured
// results with a little headroom — before the pooled version-record /
// buffer / ARU-state arenas, an ARU write+commit cost 10 allocs/op
// and a durable commit 15; the gates hold them at ≤2 and ≤6.
//
// CI runs these in the allocs-gate job without -race (the race
// detector's instrumentation allocates, so the tests skip themselves
// under it).

import (
	"testing"

	"aru"
	"aru/internal/alloctest"
)

func gateDisk(t *testing.T, numSegs int) *aru.Disk {
	t.Helper()
	layout := aru.DefaultLayout(numSegs)
	dev := aru.NewMemDevice(layout.DiskBytes())
	d, err := aru.Format(dev, aru.Params{Layout: layout})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestAllocsSimpleWrite gates the non-ARU block write — the hottest
// operation of the interface. Steady state: zero allocations (the
// committed-version buffer is recycled through the engine free list).
func TestAllocsSimpleWrite(t *testing.T) {
	d := gateDisk(t, 512)
	lst, _ := d.NewList(aru.Simple)
	blk, _ := d.NewBlock(aru.Simple, lst, aru.NilBlock)
	buf := make([]byte, d.BlockSize())
	op := func() {
		buf[0]++
		if err := d.Write(aru.Simple, blk, buf); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		op()
	}
	alloctest.Check(t, "simple write", 0, 200, op)
}

// TestAllocsRead gates the committed-state read served from memory.
func TestAllocsRead(t *testing.T) {
	d := gateDisk(t, 64)
	lst, _ := d.NewList(aru.Simple)
	blk, _ := d.NewBlock(aru.Simple, lst, aru.NilBlock)
	buf := make([]byte, d.BlockSize())
	if err := d.Write(aru.Simple, blk, buf); err != nil {
		t.Fatal(err)
	}
	op := func() {
		if err := d.Read(aru.Simple, blk, buf); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		op()
	}
	alloctest.Check(t, "read", 0, 200, op)
}

// TestAllocsARUWriteCommit gates the full ARU cycle: begin, write
// three blocks, commit. The ARU state, its shadow version records and
// their data buffers all come from the engine free lists, so the
// steady state allocates nothing; the budget of 2 leaves headroom for
// periodic segment turnover.
func TestAllocsARUWriteCommit(t *testing.T) {
	d := gateDisk(t, 512)
	lst, _ := d.NewList(aru.Simple)
	blks := make([]aru.BlockID, 3)
	for i := range blks {
		blks[i], _ = d.NewBlock(aru.Simple, lst, aru.NilBlock)
	}
	buf := make([]byte, d.BlockSize())
	op := func() {
		a, err := d.BeginARU()
		if err != nil {
			t.Fatal(err)
		}
		buf[0]++
		for _, blk := range blks {
			if err := d.Write(a, blk, buf); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.EndARU(a); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		op()
	}
	alloctest.Check(t, "ARU write+commit", 2, 200, op)
}

// TestAllocsCommitDurable gates the durable commit: begin, one block
// write, EndARU plus a device sync through the group-commit broker.
// The sealed-segment bookkeeping, spare builders and commit-stamp
// slices are all pooled; the remaining budget covers the broker's
// per-batch condition-variable signalling and device round trip.
func TestAllocsCommitDurable(t *testing.T) {
	d := gateDisk(t, 512)
	lst, _ := d.NewList(aru.Simple)
	blk, _ := d.NewBlock(aru.Simple, lst, aru.NilBlock)
	buf := make([]byte, d.BlockSize())
	op := func() {
		a, err := d.BeginARU()
		if err != nil {
			t.Fatal(err)
		}
		buf[0]++
		if err := d.Write(a, blk, buf); err != nil {
			t.Fatal(err)
		}
		if err := d.CommitDurable(a); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		op()
	}
	alloctest.Check(t, "durable commit", 6, 200, op)
}
