package aru_test

import (
	"bytes"
	"errors"
	"testing"

	"aru"
)

// TestPublicAPIRoundTrip exercises the facade end to end: format,
// ARU commit, crash, recovery, file system.
func TestPublicAPIRoundTrip(t *testing.T) {
	layout := aru.DefaultLayout(32)
	dev := aru.NewMemDevice(layout.DiskBytes())
	d, err := aru.Format(dev, aru.Params{Layout: layout})
	if err != nil {
		t.Fatal(err)
	}

	lst, err := d.NewList(aru.Simple)
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.BeginARU()
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.NewBlock(a, lst, aru.NilBlock)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x5a}, d.BlockSize())
	if err := d.Write(a, b, payload); err != nil {
		t.Fatal(err)
	}
	if err := d.EndARU(a); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}

	// Crash and recover through the public API.
	d2, rpt, err := aru.OpenReport(dev.Reopen(dev.Image()), aru.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if rpt.ARUsRecovered == 0 {
		t.Fatalf("recovery report: %+v", rpt)
	}
	got := make([]byte, d2.BlockSize())
	if err := d2.Read(aru.Simple, b, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload lost across recovery")
	}
	if err := d2.Read(aru.Simple, 9999, got); !errors.Is(err, aru.ErrNoSuchBlock) {
		t.Fatalf("error re-export broken: %v", err)
	}
}

func TestPublicFS(t *testing.T) {
	layout := aru.DefaultLayout(32)
	dev := aru.NewMemDevice(layout.DiskBytes())
	d, err := aru.Format(dev, aru.Params{Layout: layout})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := aru.MkFS(d, aru.FSConfig{NumInodes: 128})
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("/x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("through the facade"), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := aru.Open(dev, aru.Params{})
	if err != nil {
		t.Fatal(err)
	}
	fs2, err := aru.MountFS(d2, aru.DeleteListFirst)
	if err != nil {
		t.Fatal(err)
	}
	g, err := fs2.Open("/x")
	if err != nil {
		t.Fatal(err)
	}
	data, err := g.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "through the facade" {
		t.Fatalf("contents = %q", data)
	}
	if _, err := fs2.Fsck(); err != nil {
		t.Fatal(err)
	}
}

func TestVariantsExported(t *testing.T) {
	layout := aru.DefaultLayout(16)
	dev := aru.NewMemDevice(layout.DiskBytes())
	d, err := aru.Format(dev, aru.Params{Layout: layout, Variant: aru.VariantOld})
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.BeginARU()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.BeginARU(); !errors.Is(err, aru.ErrARUActive) {
		t.Fatalf("sequential variant allowed concurrency: %v", err)
	}
	if err := d.AbortARU(a); !errors.Is(err, aru.ErrAbortUnsupported) {
		t.Fatalf("abort on old variant: %v", err)
	}
	if err := d.EndARU(a); err != nil {
		t.Fatal(err)
	}
}

// TestFileDevicePersistence runs the whole stack against a file-backed
// device: data written before Close must be there after reopening the
// file from disk.
func TestFileDevicePersistence(t *testing.T) {
	path := t.TempDir() + "/disk.lld"
	layout := aru.DefaultLayout(16)
	dev, err := aru.CreateFileDevice(path, layout.DiskBytes())
	if err != nil {
		t.Fatal(err)
	}
	d, err := aru.Format(dev, aru.Params{Layout: layout})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := aru.MkFS(d, aru.FSConfig{NumInodes: 64})
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("/persist")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("on real storage"), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}

	dev2, err := aru.OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = dev2.Close() }()
	d2, err := aru.Open(dev2, aru.Params{})
	if err != nil {
		t.Fatal(err)
	}
	fs2, err := aru.MountFS(d2, aru.DeleteBlocksFirst)
	if err != nil {
		t.Fatal(err)
	}
	g, err := fs2.Open("/persist")
	if err != nil {
		t.Fatal(err)
	}
	body, err := g.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "on real storage" {
		t.Fatalf("contents = %q", body)
	}
}
