package aru

import (
	"aru/internal/minixfs"
)

// FS is the bundled Minix-style file system client — the paper's
// MinixLLD (§5.1). It runs entirely on the LD interface and brackets
// file/directory creation and file deletion in ARUs, so it needs no
// fsck after a crash. See aru/internal/minixfs.
type FS = minixfs.FS

// File is an open handle to a regular file.
type File = minixfs.File

// FSConfig parameterizes MkFS.
type FSConfig = minixfs.Config

// DeletePolicy selects how Remove de-allocates file data (the paper's
// "new" versus "new, delete" builds).
type DeletePolicy = minixfs.DeletePolicy

// Deletion policies.
const (
	// DeleteBlocksFirst de-allocates block by block, then the list.
	DeleteBlocksFirst = minixfs.DeleteBlocksFirst
	// DeleteListFirst deletes the list outright (improved deletion).
	DeleteListFirst = minixfs.DeleteListFirst
)

// FileMode distinguishes inode types.
type FileMode = minixfs.Mode

// File modes.
const (
	// ModeFile is a regular file.
	ModeFile = minixfs.ModeFile
	// ModeDir is a directory.
	ModeDir = minixfs.ModeDir
)

// File system errors, re-exported for errors.Is tests.
var (
	ErrNotExist = minixfs.ErrNotExist
	ErrExist    = minixfs.ErrExist
	ErrNotDir   = minixfs.ErrNotDir
	ErrIsDir    = minixfs.ErrIsDir
	ErrNotEmpty = minixfs.ErrNotEmpty
)

// MkFS formats a Minix-style file system onto a freshly formatted
// logical disk and returns it mounted.
func MkFS(d *Disk, cfg FSConfig) (*FS, error) {
	return minixfs.Mkfs(d, cfg)
}

// MountFS opens a file system previously created with MkFS on a
// freshly formatted disk; the logical disk must already be recovered
// via Open.
func MountFS(d *Disk, policy DeletePolicy) (*FS, error) {
	return minixfs.Mount(d, policy)
}

// (*FS).Link, (*FS).Rename etc. are methods on the re-exported FS type;
// see aru/internal/minixfs for the full client API.
//
// MountFSAt opens the file system whose meta list is metaList — the
// way to address one of several file systems sharing a single logical
// disk (the multi-client arrangement of paper §2).
func MountFSAt(d *Disk, policy DeletePolicy, metaList ListID) (*FS, error) {
	return minixfs.MountAt(d, policy, metaList)
}
