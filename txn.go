package aru

import (
	"aru/internal/txn"
)

// TxnManager coordinates full transactions — ARUs plus strict
// two-phase locking (isolation) plus optional flush-on-commit
// (durability) — the client layering the paper prescribes in §7. See
// aru/internal/txn.
type TxnManager = txn.Manager

// Txn is one transaction.
type Txn = txn.Txn

// Transaction errors, re-exported for errors.Is tests.
var (
	// ErrTxnAborted reports a wait-die conflict; retry the transaction
	// (TxnManager.Run does this automatically).
	ErrTxnAborted = txn.ErrAborted
	// ErrTxnDone reports use of a finished transaction.
	ErrTxnDone = txn.ErrDone
)

// NewTxnManager returns a transaction manager for d. All transactional
// access to a disk must share one manager (it is the lock table).
func NewTxnManager(d *Disk) *TxnManager {
	return txn.NewManager(d)
}
