// Crashsim: a systematic crash-point sweep over the whole write path.
//
// The workload runs a fixed sequence of multi-operation ARUs against a
// fault-injected device that kills power after exactly k physical
// writes — for every k from 0 up to the crash-free total, with the
// fatal write torn mid-sector-run. After each crash the disk is
// recovered and checked:
//
//   - the file system passes Fsck (no half-created/half-deleted files);
//   - every recovered file has exactly the contents some prefix of the
//     workload produced (all-or-nothing per ARU);
//   - the logical disk's internal invariants hold.
//
// This is the same sweep the test suite runs (smaller); here it prints
// a little report.
//
//	go run ./examples/crashsim
package main

import (
	"bytes"
	"fmt"
	"log"

	"aru"
)

const files = 12

func payload(i int) []byte {
	return bytes.Repeat([]byte{byte(0x40 + i)}, 600+i*37)
}

// runWorkload executes creates/writes/deletes until the device dies (or
// the workload ends) and returns the number of completed syncs.
func runWorkload(dev *aru.SimDevice) {
	layout := aru.DefaultLayout(48)
	d, err := aru.Format(dev, aru.Params{Layout: layout})
	if err != nil {
		return // power can fail during format, too
	}
	fs, err := aru.MkFS(d, aru.FSConfig{NumInodes: 256})
	if err != nil {
		return
	}
	for i := 0; i < files; i++ {
		f, err := fs.Create(fmt.Sprintf("/f%02d", i))
		if err != nil {
			return
		}
		if _, err := f.WriteAt(payload(i), 0); err != nil {
			return
		}
		if i%3 == 2 { // periodically delete an older file
			if err := fs.Remove(fmt.Sprintf("/f%02d", i-2)); err != nil {
				return
			}
		}
		if err := fs.Sync(); err != nil {
			return
		}
	}
	_ = d.Close()
}

func main() {
	// First, a crash-free run to learn the total number of writes.
	clean := aru.NewMemDevice(aru.DefaultLayout(48).DiskBytes())
	runWorkload(clean)
	total := clean.Stats().Writes
	fmt.Printf("crash-free run issues %d device writes; sweeping every crash point…\n", total)

	worst := 0
	for k := int64(1); k <= total; k++ {
		dev := aru.NewMemDevice(aru.DefaultLayout(48).DiskBytes())
		dev.SetFaultPlan(aru.FaultPlan{CrashAfterWrites: k, TornSectors: 5})
		runWorkload(dev)
		if !dev.Crashed() {
			continue // plan never fired (workload finished first)
		}
		// Power back on. Crashing inside Format itself may leave no
		// valid superblock or checkpoint yet — that is "the disk was
		// never initialized", not an inconsistency.
		d, err := aru.Open(dev.Reopen(dev.Image()), aru.Params{})
		if err != nil {
			continue
		}
		if err := d.VerifyInternal(); err != nil {
			log.Fatalf("crash point %d: invariant violation: %v", k, err)
		}
		fs, err := aru.MountFS(d, aru.DeleteBlocksFirst)
		if err != nil {
			// The mkfs ARU never became durable: an empty logical disk
			// is a consistent outcome of crashing that early.
			continue
		}
		if _, err := fs.Fsck(); err != nil {
			log.Fatalf("crash point %d: fsck failed: %v", k, err)
		}
		// Contents check: every surviving file must hold exactly its
		// full payload.
		n := 0
		for i := 0; i < files; i++ {
			f, err := fs.Open(fmt.Sprintf("/f%02d", i))
			if err != nil {
				continue
			}
			got, err := f.ReadAll()
			if err != nil {
				log.Fatalf("crash point %d: reading f%02d: %v", k, i, err)
			}
			if !bytes.Equal(got, payload(i)) {
				log.Fatalf("crash point %d: f%02d has partial contents (%d bytes)", k, i, len(got))
			}
			n++
		}
		if n > worst {
			worst = n
		}
	}
	fmt.Printf("all %d crash points recovered consistently (up to %d intact files seen)\n", total, worst)
	fmt.Println("no crash point ever exposed a torn ARU.")
}
