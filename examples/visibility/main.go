// Visibility: the three Read-semantics options of paper §3.3.
//
// The paper defines three possible visibilities for Read under
// concurrent ARUs and implements the strongest-isolation one (option
// 3). This library implements all three; the example shows how the
// same interleaving reads differently under each.
//
//	go run ./examples/visibility
package main

import (
	"fmt"
	"log"

	"aru"
)

func main() {
	for _, opt := range []struct {
		sem  aru.ReadSemantics
		desc string
	}{
		{aru.ReadAnyShadow, "option 1: any update is visible to all clients right away"},
		{aru.ReadCommitted, "option 2: updates become visible only at commit"},
		{aru.ReadOwnShadow, "option 3 (the paper's prototype): shadow state is local to its ARU"},
	} {
		layout := aru.DefaultLayout(16)
		dev := aru.NewMemDevice(layout.DiskBytes())
		d, err := aru.Format(dev, aru.Params{Layout: layout, ReadSemantics: opt.sem})
		if err != nil {
			log.Fatal(err)
		}
		lst, _ := d.NewList(aru.Simple)
		b, _ := d.NewBlock(aru.Simple, lst, aru.NilBlock)
		write := func(who aru.ARUID, v byte) {
			buf := make([]byte, d.BlockSize())
			buf[0] = v
			if err := d.Write(who, b, buf); err != nil {
				log.Fatal(err)
			}
		}
		read := func(who aru.ARUID) byte {
			buf := make([]byte, d.BlockSize())
			if err := d.Read(who, b, buf); err != nil {
				log.Fatal(err)
			}
			return buf[0]
		}

		write(aru.Simple, 1) // committed version = 1
		a1, _ := d.BeginARU()
		a2, _ := d.BeginARU()
		write(a1, 2) // shadow of ARU 1
		write(a2, 3) // shadow of ARU 2 (most recent overall)

		fmt.Printf("%s (%v)\n", opt.desc, opt.sem)
		fmt.Printf("  committed=1, ARU1 wrote 2, ARU2 wrote 3\n")
		fmt.Printf("  simple client reads %d   ARU1 reads %d   ARU2 reads %d\n",
			read(aru.Simple), read(a1), read(a2))
		if err := d.EndARU(a1); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  after ARU1 commits:       simple client reads %d\n\n", read(aru.Simple))
	}
}
