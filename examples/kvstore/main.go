// Kvstore: a durable key-value store built directly on the Logical
// Disk, using one ARU per multi-key transaction.
//
// The paper's §3 motivates ARUs with "transaction-based systems as
// direct disk system clients": instead of mapping transaction semantics
// onto a file system (synchronous writes, fsync storms), the store
// below keeps one LD list per hash bucket, one block per entry, and
// brackets every multi-key update in a single ARU. A crash can never
// expose half of a transaction.
//
// The store is written against aru.Interface, not *aru.Disk: the same
// code runs on an in-process disk (as below) or on a remote disk —
// replace the Format call with aru.Dial("host:9477", aru.DialConfig{})
// against an aru-serve instance and nothing else changes.
//
//	go run ./examples/kvstore
package main

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"log"

	"aru"
)

// kv is a minimal durable map: string keys and values up to one block.
// It programs against aru.Interface, so the disk may be local or
// remote.
type kv struct {
	d       aru.Interface
	buckets []aru.ListID
	bsize   int
}

const numBuckets = 16

// newKV formats the bucket lists on a fresh logical disk.
func newKV(d aru.Interface) (*kv, error) {
	s := &kv{d: d, bsize: d.BlockSize()}
	a, err := d.BeginARU()
	if err != nil {
		return nil, err
	}
	for i := 0; i < numBuckets; i++ {
		lst, err := d.NewList(a)
		if err != nil {
			_ = d.AbortARU(a)
			return nil, err
		}
		s.buckets = append(s.buckets, lst)
	}
	return s, d.EndARU(a)
}

func (s *kv) bucket(key string) aru.ListID {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return s.buckets[h.Sum32()%numBuckets]
}

// encode packs a key/value pair into one block.
func (s *kv) encode(key, value string) []byte {
	buf := make([]byte, s.bsize)
	binary.LittleEndian.PutUint16(buf[0:], uint16(len(key)))
	binary.LittleEndian.PutUint16(buf[2:], uint16(len(value)))
	copy(buf[4:], key)
	copy(buf[4+len(key):], value)
	return buf
}

func decode(buf []byte) (key, value string) {
	kl := int(binary.LittleEndian.Uint16(buf[0:]))
	vl := int(binary.LittleEndian.Uint16(buf[2:]))
	return string(buf[4 : 4+kl]), string(buf[4+kl : 4+kl+vl])
}

// find returns the block holding key in its bucket, if any. Lookups run
// in the state of a (pass aru.Simple outside a transaction).
func (s *kv) find(a aru.ARUID, key string) (aru.BlockID, bool, error) {
	blocks, err := s.d.ListBlocks(a, s.bucket(key))
	if err != nil {
		return 0, false, err
	}
	buf := make([]byte, s.bsize)
	for _, b := range blocks {
		if err := s.d.Read(a, b, buf); err != nil {
			return 0, false, err
		}
		if k, _ := decode(buf); k == key {
			return b, true, nil
		}
	}
	return 0, false, nil
}

// Get returns the committed value of key.
func (s *kv) Get(key string) (string, bool, error) {
	b, ok, err := s.find(aru.Simple, key)
	if err != nil || !ok {
		return "", false, err
	}
	buf := make([]byte, s.bsize)
	if err := s.d.Read(aru.Simple, b, buf); err != nil {
		return "", false, err
	}
	_, v := decode(buf)
	return v, true, nil
}

// put writes one pair within the state of a.
func (s *kv) put(a aru.ARUID, key, value string) error {
	b, ok, err := s.find(a, key)
	if err != nil {
		return err
	}
	if !ok {
		if b, err = s.d.NewBlock(a, s.bucket(key), aru.NilBlock); err != nil {
			return err
		}
	}
	return s.d.Write(a, b, s.encode(key, value))
}

// Apply runs a multi-key transaction: all puts become persistent
// together or not at all. Durability is requested explicitly, as the
// paper prescribes (ARUs themselves do not guarantee it).
func (s *kv) Apply(puts map[string]string, durable bool) error {
	a, err := s.d.BeginARU()
	if err != nil {
		return err
	}
	for k, v := range puts {
		if err := s.put(a, k, v); err != nil {
			_ = s.d.AbortARU(a)
			return err
		}
	}
	if err := s.d.EndARU(a); err != nil {
		return err
	}
	if durable {
		return s.d.Flush()
	}
	return nil
}

func main() {
	layout := aru.DefaultLayout(32)
	dev := aru.NewMemDevice(layout.DiskBytes())
	d, err := aru.Format(dev, aru.Params{Layout: layout})
	if err != nil {
		log.Fatal(err)
	}
	store, err := newKV(d)
	if err != nil {
		log.Fatal(err)
	}

	// A classic bank transfer: two keys must move together.
	if err := store.Apply(map[string]string{"alice": "100", "bob": "0"}, true); err != nil {
		log.Fatal(err)
	}
	fmt.Println("initial balances: alice=100 bob=0 (durable)")

	// Transfer 40 from alice to bob, but crash before flushing.
	if err := store.Apply(map[string]string{"alice": "60", "bob": "40"}, false); err != nil {
		log.Fatal(err)
	}
	fmt.Println("transfer committed in memory; power fails before flush…")

	dev2 := dev.Reopen(dev.Image())
	d2, err := aru.Open(dev2, aru.Params{})
	if err != nil {
		log.Fatal(err)
	}
	store.d = d2
	a, _, _ := store.Get("alice")
	b, _, _ := store.Get("bob")
	fmt.Printf("after recovery: alice=%s bob=%s — the transfer vanished atomically\n", a, b)

	// Do it again, durably this time.
	if err := store.Apply(map[string]string{"alice": "60", "bob": "40"}, true); err != nil {
		log.Fatal(err)
	}
	d3, err := aru.Open(dev2.Reopen(dev2.Image()), aru.Params{})
	if err != nil {
		log.Fatal(err)
	}
	store.d = d3
	a, _, _ = store.Get("alice")
	b, _, _ = store.Get("bob")
	fmt.Printf("after durable transfer + crash: alice=%s bob=%s — both moved together\n", a, b)
}
