// Bank: full transactions layered on ARUs, as the paper prescribes.
//
// §7: "full data isolation and mechanisms for durability must be
// provided by the disk system clients." The transaction layer adds
// strict two-phase locking and optional flush-on-commit on top of the
// ARU it runs in. This example hammers a small ledger with concurrent
// transfers, crashes the machine, and shows the invariant (total money)
// holding through both concurrency and failure.
//
//	go run ./examples/bank
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync"

	"aru"
)

const (
	accounts   = 8
	perAccount = 1000
	workers    = 6
	transfers  = 50
)

func main() {
	layout := aru.DefaultLayout(64)
	dev := aru.NewMemDevice(layout.DiskBytes())
	d, err := aru.Format(dev, aru.Params{Layout: layout})
	if err != nil {
		log.Fatal(err)
	}
	m := aru.NewTxnManager(d)
	bs := d.BlockSize()

	// Open the ledger: one block per account, durably.
	var ids [accounts]aru.BlockID
	err = m.Run(true, func(tx *aru.Txn) error {
		lst, err := tx.NewList()
		if err != nil {
			return err
		}
		for i := range ids {
			b, err := tx.NewBlock(lst, aru.NilBlock)
			if err != nil {
				return err
			}
			ids[i] = b
			if err := put(tx, b, perAccount, bs); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ledger opened: %d accounts × %d = %d total\n",
		accounts, perAccount, accounts*perAccount)

	// Concurrent transfers; every 10th one durable.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < transfers; i++ {
				from, to := ids[(w+i)%accounts], ids[(w*3+i+1)%accounts]
				if from == to {
					continue
				}
				durable := i%10 == 9
				err := m.Run(durable, func(tx *aru.Txn) error {
					fv, err := get(tx, from, bs)
					if err != nil {
						return err
					}
					tv, err := get(tx, to, bs)
					if err != nil {
						return err
					}
					amt := uint64(1 + (w+i)%5)
					if fv < amt {
						return nil
					}
					if err := put(tx, from, fv-amt, bs); err != nil {
						return err
					}
					return put(tx, to, tv+amt, bs)
				})
				if err != nil {
					log.Fatal(err)
				}
			}
		}(w)
	}
	wg.Wait()
	fmt.Printf("%d workers × %d transfers done (isolation via 2PL, retries on wait-die)\n",
		workers, transfers)
	fmt.Printf("total now: %d\n", sum(m, ids[:], bs))

	// Power failure; only durably committed transactions survive — but
	// whatever survives conserves the total.
	d2, err := aru.Open(dev.Reopen(dev.Image()), aru.Params{})
	if err != nil {
		log.Fatal(err)
	}
	m2 := aru.NewTxnManager(d2)
	total := sum(m2, ids[:], bs)
	fmt.Printf("after crash+recovery: total %d — conserved across concurrency AND failure\n", total)
	if total != accounts*perAccount {
		log.Fatal("invariant broken!")
	}
}

func put(tx *aru.Txn, b aru.BlockID, v uint64, bs int) error {
	buf := make([]byte, bs)
	binary.LittleEndian.PutUint64(buf, v)
	return tx.Write(b, buf)
}

func get(tx *aru.Txn, b aru.BlockID, bs int) (uint64, error) {
	buf := make([]byte, bs)
	if err := tx.Read(b, buf); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf), nil
}

func sum(m *aru.TxnManager, ids []aru.BlockID, bs int) uint64 {
	var total uint64
	err := m.Run(false, func(tx *aru.Txn) error {
		total = 0
		for _, b := range ids {
			v, err := get(tx, b, bs)
			if err != nil {
				return err
			}
			total += v
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	return total
}
