// Quickstart: the Logical Disk API and atomic recovery units.
//
// This example formats a small in-memory logical disk, shows simple
// (non-ARU) operations, then demonstrates the two properties ARUs add:
// isolation of the shadow state until commit, and all-or-nothing
// recovery after a crash.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"aru"
)

func main() {
	layout := aru.DefaultLayout(32) // 32 × 0.5 MB segments
	dev := aru.NewMemDevice(layout.DiskBytes())
	d, err := aru.Format(dev, aru.Params{Layout: layout})
	if err != nil {
		log.Fatal(err)
	}

	// --- Simple operations: each one is atomic by itself. ---
	lst, err := d.NewList(aru.Simple)
	if err != nil {
		log.Fatal(err)
	}
	b1, err := d.NewBlock(aru.Simple, lst, aru.NilBlock) // at the head
	if err != nil {
		log.Fatal(err)
	}
	payload := make([]byte, d.BlockSize())
	copy(payload, "hello, logical disk")
	if err := d.Write(aru.Simple, b1, payload); err != nil {
		log.Fatal(err)
	}

	// --- An ARU: several operations, one unit. ---
	a, err := d.BeginARU()
	if err != nil {
		log.Fatal(err)
	}
	b2, err := d.NewBlock(a, lst, b1) // insert after b1, shadowed
	if err != nil {
		log.Fatal(err)
	}
	copy(payload, "written inside an ARU")
	if err := d.Write(a, b2, payload); err != nil {
		log.Fatal(err)
	}

	// Until EndARU, other clients see none of it (the paper's third
	// read-semantics option: shadow state is local to its ARU).
	committed, _ := d.ListBlocks(aru.Simple, lst)
	inARU, _ := d.ListBlocks(a, lst)
	fmt.Printf("before commit: committed view %v, ARU view %v\n", committed, inARU)

	if err := d.EndARU(a); err != nil {
		log.Fatal(err)
	}
	committed, _ = d.ListBlocks(aru.Simple, lst)
	fmt.Printf("after commit:  committed view %v\n", committed)

	// --- Crash atomicity. ---
	// Flush makes everything so far persistent; then a new ARU writes
	// b1 and inserts a third block, and we "lose power" before its
	// commit record reaches disk.
	if err := d.Flush(); err != nil {
		log.Fatal(err)
	}
	a2, _ := d.BeginARU()
	copy(payload, "doomed update")
	if err := d.Write(a2, b1, payload); err != nil {
		log.Fatal(err)
	}
	if _, err := d.NewBlock(a2, lst, b2); err != nil {
		log.Fatal(err)
	}
	if err := d.EndARU(a2); err != nil {
		log.Fatal(err)
	}
	// Committed — but not flushed. Power off, power on:
	d2, rpt, err := aru.OpenReport(dev.Reopen(dev.Image()), aru.Params{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery: %d segments replayed, %d ARUs recovered, %d dropped, %d leaked blocks freed\n",
		rpt.SegmentsReplayed, rpt.ARUsRecovered, rpt.ARUsDropped, rpt.LeakedFreed)

	got := make([]byte, d2.BlockSize())
	if err := d2.Read(aru.Simple, b1, got); err != nil {
		log.Fatal(err)
	}
	blocks, _ := d2.ListBlocks(aru.Simple, lst)
	fmt.Printf("after crash:   b1 = %q, list = %v\n", trim(got), blocks)
	fmt.Println("the uncommitted-at-flush-time ARU left no trace: all or nothing.")
}

func trim(b []byte) string {
	n := 0
	for n < len(b) && b[n] != 0 {
		n++
	}
	return string(b[:n])
}
