// Filesystem: the Minix-style file system on LLD, and why it needs no
// fsck.
//
// This example builds a directory tree, crashes the simulated disk in
// the middle of a burst of file creations, recovers, and shows that the
// file system is consistent without any repair pass — every create
// either fully happened or left no trace (paper §5.1).
//
//	go run ./examples/filesystem
package main

import (
	"fmt"
	"log"

	"aru"
)

func main() {
	layout := aru.DefaultLayout(64)
	dev := aru.NewMemDevice(layout.DiskBytes())
	d, err := aru.Format(dev, aru.Params{Layout: layout})
	if err != nil {
		log.Fatal(err)
	}
	fs, err := aru.MkFS(d, aru.FSConfig{NumInodes: 2048})
	if err != nil {
		log.Fatal(err)
	}

	// A small project tree.
	for _, dir := range []string{"/src", "/src/core", "/doc"} {
		if err := fs.Mkdir(dir); err != nil {
			log.Fatal(err)
		}
	}
	write := func(path, text string) {
		f, err := fs.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := f.WriteAt([]byte(text), 0); err != nil {
			log.Fatal(err)
		}
	}
	write("/src/core/lld.go", "package core // the interesting part")
	write("/doc/README", "reproduction of the ICDCS '96 ARU paper")
	if err := fs.Sync(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("tree built and flushed:")
	walk(fs, "/", 1)

	// Now a burst of creations, interrupted by a power failure after a
	// bounded number of physical writes.
	dev.SetFaultPlan(aru.FaultPlan{CrashAfterWrites: 12, TornSectors: 3})
	created := 0
	for i := 0; ; i++ {
		name := fmt.Sprintf("/src/gen_%03d.go", i)
		f, err := fs.Create(name)
		if err != nil {
			fmt.Printf("\npower failed during create #%d: %v\n", i, err)
			break
		}
		if _, err := f.WriteAt([]byte("generated"), 0); err != nil {
			fmt.Printf("\npower failed writing file #%d: %v\n", i, err)
			break
		}
		created++
		if err := fs.Sync(); err != nil {
			fmt.Printf("\npower failed during sync after #%d: %v\n", i, err)
			break
		}
	}

	// Power back on: recover the logical disk, remount, verify.
	d2, rpt, err := aru.OpenReport(dev.Reopen(dev.Image()), aru.Params{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery: %d ARUs recovered, %d dropped, %d leaked blocks freed\n",
		rpt.ARUsRecovered, rpt.ARUsDropped, rpt.LeakedFreed)
	fs2, err := aru.MountFS(d2, aru.DeleteBlocksFirst)
	if err != nil {
		log.Fatal(err)
	}
	chk, err := fs2.Fsck()
	if err != nil {
		log.Fatalf("fsck found an inconsistency (this must never happen): %v", err)
	}
	fmt.Printf("fsck: clean — %d inodes used, %d files, %d dirs, %d bytes\n",
		chk.InodesUsed, chk.FilesFound, chk.DirsFound, chk.BytesInFiles)
	fmt.Printf("%d creates were issued before the crash; the recovered tree:\n", created)
	walk(fs2, "/", 1)
	fmt.Println("every generated file is either fully present or fully absent.")
}

func walk(fs *aru.FS, path string, depth int) {
	ents, err := fs.ReadDir(path)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range ents {
		child := path + "/" + e.Name
		if path == "/" {
			child = "/" + e.Name
		}
		fmt.Printf("%*s%s\n", 2*depth, "", e.Name)
		if e.Mode == aru.ModeDir {
			walk(fs, child, depth+1)
		}
	}
}
