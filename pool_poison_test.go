package aru_test

// Pool-recycling safety tests: the engine recycles version records,
// block buffers and ARU states through free lists under the engine
// lock (internal/core/pool.go), and the group-commit broker retains
// sealed-segment images while device I/O runs outside the lock. A
// recycling bug — a buffer returned to the pool while a reader or a
// retained segment image can still see it — shows up here as a read
// observing another unit's bytes.
//
// Every write in these tests is a uniform pattern (all bytes equal),
// and each goroutine tracks the value it last committed per block, so
// any cross-contamination is detected exactly: a read must return the
// tracked value in every byte. Run under -race these tests also
// catch the raw data races a premature recycle would cause; the race
// CI job runs them that way.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"aru"
)

// TestPoolRecyclingIsolation runs concurrent ARU writers (half of
// whose units abort, exercising the discardShadow recycle path), a
// continuous flusher (exercising sealed-segment retention and the
// spare-builder pool), and per-writer read-back verification.
func TestPoolRecyclingIsolation(t *testing.T) {
	layout := aru.DefaultLayout(192)
	dev := aru.NewMemDevice(layout.DiskBytes())
	d, err := aru.Format(dev, aru.Params{Layout: layout})
	if err != nil {
		t.Fatal(err)
	}

	const (
		writers   = 4
		blocksPer = 4
		rounds    = 150
	)
	bs := d.BlockSize()

	// Each writer owns its own list and blocks; contamination can only
	// come from recycled storage, never from a legal concurrent write.
	blks := make([][]aru.BlockID, writers)
	for w := range blks {
		lst, err := d.NewList(aru.Simple)
		if err != nil {
			t.Fatal(err)
		}
		blks[w] = make([]aru.BlockID, blocksPer)
		for i := range blks[w] {
			if blks[w][i], err = d.NewBlock(aru.Simple, lst, aru.NilBlock); err != nil {
				t.Fatal(err)
			}
		}
	}

	stop := make(chan struct{})
	var flushWG sync.WaitGroup
	flushWG.Add(1)
	go func() {
		defer flushWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := d.Flush(); err != nil {
					t.Errorf("flush: %v", err)
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, bs)
			rd := make([]byte, bs)
			committed := make([]byte, blocksPer) // last committed pattern per block; 0 = never written
			check := func(i int, want byte, where string) error {
				if err := d.Read(aru.Simple, blks[w][i], rd); err != nil {
					return fmt.Errorf("%s read: %w", where, err)
				}
				if !bytes.Equal(rd, bytes.Repeat([]byte{want}, bs)) {
					return fmt.Errorf("%s: block %d of writer %d holds %x %x... want uniform %x — recycled buffer leaked",
						where, i, w, rd[0], rd[1], want)
				}
				return nil
			}
			for r := 1; r <= rounds; r++ {
				pat := byte(w*60 + r%50 + 1)
				a, err := d.BeginARU()
				if err != nil {
					t.Errorf("writer %d: begin: %v", w, err)
					return
				}
				for i := range blks[w] {
					for j := range buf {
						buf[j] = pat
					}
					if err := d.Write(a, blks[w][i], buf); err != nil {
						t.Errorf("writer %d: write: %v", w, err)
						return
					}
					// The shadow state must already read back uniformly.
					if err := d.Read(a, blks[w][i], rd); err != nil {
						t.Errorf("writer %d: shadow read: %v", w, err)
						return
					}
					if !bytes.Equal(rd, buf) {
						t.Errorf("writer %d: shadow read of block %d differs from just-written data", w, i)
						return
					}
				}
				if r%3 == 0 {
					// Abort: shadow records and buffers go back to the
					// free lists; the committed state must be untouched.
					if err := d.AbortARU(a); err != nil {
						t.Errorf("writer %d: abort: %v", w, err)
						return
					}
				} else {
					if err := d.EndARU(a); err != nil {
						t.Errorf("writer %d: commit: %v", w, err)
						return
					}
					for i := range committed {
						committed[i] = pat
					}
				}
				for i, want := range committed {
					if want == 0 {
						continue
					}
					if err := check(i, want, "post-unit"); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	flushWG.Wait()

	// A final durable cycle and consistency check over the recycled
	// state: everything the pools touched must still verify.
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.CheckDisk(); err != nil {
		t.Fatalf("consistency check after pool churn: %v", err)
	}
}
